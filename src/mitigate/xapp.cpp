#include "mitigate/xapp.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "oran/e2sm.hpp"
#include "oran/ric.hpp"

namespace xsec::mitigate {

MitigationXapp::MitigationXapp(MitigationConfig config)
    : oran::XApp("mitigation"), config_(std::move(config)) {}

MitigationXapp::Metrics& MitigationXapp::m() const {
  if (!metrics_.bound) {
    obs::MetricsRegistry& r = obs().metrics;
    metrics_.actions_issued = &r.counter("mitigate.actions_issued");
    metrics_.actions_failed = &r.counter("mitigate.actions_failed");
    metrics_.rollbacks = &r.counter("mitigate.rollbacks");
    metrics_.rollbacks_ttl = &r.counter("mitigate.rollbacks_ttl");
    metrics_.rollbacks_evidence = &r.counter("mitigate.rollbacks_evidence");
    metrics_.escalations = &r.counter("mitigate.escalations");
    metrics_.budget_exhausted = &r.counter("mitigate.budget_exhausted");
    metrics_.a1_tunings = &r.counter("mitigate.a1_tunings");
    metrics_.verdicts_consumed = &r.counter("mitigate.verdicts_consumed");
    metrics_.policy_loads = &r.counter("mitigate.policy_loads");
    metrics_.policy_errors = &r.counter("mitigate.policy_errors");
    metrics_.time_to_mitigate_us = &r.histogram("mitigate.time_to_mitigate_us");
    metrics_.time_to_recover_us = &r.histogram("mitigate.time_to_recover_us");
    metrics_.bound = true;
  }
  return metrics_;
}

void MitigationXapp::on_start() {
  load_policy();
  // Live reload: an operator (or test) rewriting the table in the SDL
  // replaces the rule set in force without restarting the xApp.
  sdl().watch(config_.policy_namespace,
              [this](const std::string&, const std::string& key) {
                if (key == config_.policy_key) load_policy();
              });
  router().subscribe(oran::kMtIncidentVerdict,
                     [this](const oran::RoutedMessage& message) {
                       handle_verdict(message);
                     });
  router().subscribe(oran::kMtAnomalyWindow,
                     [this](const oran::RoutedMessage& message) {
                       handle_anomaly(message);
                     });
}

std::int64_t MitigationXapp::now_us() const {
  obs::Tracer& tracer = obs().tracer;
  return tracer.has_clock() ? tracer.now().us : 0;
}

double MitigationXapp::source_trust(std::uint64_t node_id,
                                    std::uint64_t source_ue) const {
  auto it = sources_.find(SourceKey{node_id, source_ue});
  return it == sources_.end() ? 1.0 : it->second.trust;
}

void MitigationXapp::record(const std::string& text) {
  sdl().set_str(config_.sdl_namespace, oran::Sdl::seq_key(next_record_++),
                text);
}

std::string MitigationXapp::model_version() {
  auto active = sdl().get_str(config_.model_namespace, "active");
  return active ? *active : std::string("v0");
}

void MitigationXapp::load_policy() {
  auto text =
      sdl().get_str(config_.policy_namespace, config_.policy_key);
  if (!text) return;  // no operator table; defaults stay in force
  auto parsed = MitigationPolicy::parse(*text);
  if (!parsed) {
    m().policy_errors->inc();
    record("policy rejected: " + parsed.error().message);
    XSEC_LOG_WARN("mitigation", "operator policy rejected (",
                  parsed.error().message, "), keeping previous table");
    return;
  }
  config_.policy = std::move(parsed).value();
  m().policy_loads->inc();
  record("policy loaded: " + std::to_string(config_.policy.rules.size()) +
         " rules, budget " +
         std::to_string(config_.policy.max_actions_per_source));
}

void MitigationXapp::handle_anomaly(const oran::RoutedMessage& message) {
  if (!config_.fast_path) return;
  auto anomaly = detect::AnomalyReport::deserialize(message.payload);
  if (!anomaly) return;
  const detect::AnomalyReport& report = anomaly.value();
  if (report.node_id == 0) return;
  SourceKey key{report.node_id, report.source_ue};
  // One active action per source; escalation (verdict-driven) replaces it.
  if (active_.count(key)) return;
  double ratio =
      report.threshold > 0.0 ? report.score / report.threshold : 1.0;
  double trust = source_trust(report.node_id, report.source_ue);
  const PolicyRule* rule =
      config_.policy.match(RuleStage::kDetector, {}, ratio, trust);
  if (!rule) return;
  std::int64_t flagged_at_us = 0;
  for (const auto& entry : report.window.entries())
    flagged_at_us = std::max(flagged_at_us, entry.record.timestamp_us);
  issue(key, *rule, {}, flagged_at_us, /*escalation=*/false,
        /*cause=*/"detector-flag");
}

void MitigationXapp::handle_verdict(const oran::RoutedMessage& message) {
  auto decoded = llm::IncidentVerdict::deserialize(message.payload);
  if (!decoded) {
    XSEC_LOG_WARN("mitigation", "undecodable incident verdict: ",
                  decoded.error().message);
    return;
  }
  const llm::IncidentVerdict& verdict = decoded.value();
  m().verdicts_consumed->inc();
  if (verdict.node_id == 0) return;
  SourceKey key{verdict.node_id, verdict.source_ue};

  if (!verdict.llm_agrees) {
    // False-positive evidence: whatever is active against this source was
    // unjustified. Revert it and restore trust.
    if (active_.count(key)) {
      SourceState& source = sources_[key];
      source.trust = std::min(1.0, source.trust + config_.trust_restore);
      rollback(key, "evidence", m().rollbacks_evidence);
      tune_detection();
    }
    return;
  }

  SourceState& source = sources_[key];
  source.trust *= config_.trust_decay;
  if (active_.count(key)) {
    escalate(key, verdict);
    return;
  }
  double ratio =
      verdict.threshold > 0.0 ? verdict.score / verdict.threshold : 1.0;
  const PolicyRule* rule = config_.policy.match(
      RuleStage::kClassified, verdict.candidate_attacks, ratio, source.trust);
  if (!rule) return;
  issue(key, *rule, verdict.suspect_tmsis, verdict.flagged_at_us,
        /*escalation=*/false, /*cause=*/"verdict");
}

void MitigationXapp::issue(const SourceKey& key, const PolicyRule& rule,
                           std::vector<std::uint64_t> tmsis,
                           std::int64_t flagged_at_us, bool escalation,
                           const char* cause) {
  SourceState& source = sources_[key];
  if (source.actions_charged >= config_.policy.max_actions_per_source) {
    m().budget_exhausted->inc();
    record("source node=" + std::to_string(key.first) + " ue=" +
           std::to_string(key.second) + " action budget exhausted");
    return;
  }
  ++source.actions_charged;

  auto prior = active_.find(key);
  std::uint64_t epoch = prior == active_.end() ? 1 : prior->second.ttl_epoch + 1;
  ActiveAction action;
  action.action_id = next_action_id_++;
  action.kind = rule.action;
  action.ttl_ms = rule.ttl_ms;
  action.issued_at_us = now_us();
  action.tmsis = std::move(tmsis);
  action.ttl_epoch = epoch;
  action.rate_limit = rule.rate_limit;
  action.rate_window_ms = rule.rate_window_ms;
  action.stale_age_ms = rule.stale_age_ms;
  ActiveAction& live = active_[key] = std::move(action);

  send_action_controls(key, live);
  m().actions_issued->inc();
  if (escalation) m().escalations->inc();
  std::int64_t now = live.issued_at_us;
  if (flagged_at_us > 0 && now >= flagged_at_us)
    m().time_to_mitigate_us->observe(
        static_cast<std::uint64_t>(now - flagged_at_us));
  record("action #" + std::to_string(live.action_id) +
         (escalation ? " escalate " : " issue ") + to_string(live.kind) +
         " cause=" + cause + " node=" + std::to_string(key.first) +
         " ue=" + std::to_string(key.second) +
         " ttl=" + std::to_string(live.ttl_ms) +
         "ms trust=" + format_fixed(source.trust, 4) +
         " model=" + model_version());
  XSEC_LOG_INFO("mitigation", escalation ? "escalated to " : "issued ",
                to_string(live.kind), " against node ", key.first, " (ttl ",
                live.ttl_ms, " ms)");
  ric().schedule_after(
      SimDuration::from_ms(static_cast<double>(live.ttl_ms)),
      [this, key, epoch] { ttl_expired(key, epoch); });
}

void MitigationXapp::escalate(const SourceKey& key,
                              const llm::IncidentVerdict& verdict) {
  ActiveAction& action = active_[key];
  SourceState& source = sources_[key];
  std::vector<std::uint64_t> tmsis = verdict.suspect_tmsis;
  if (tmsis.empty()) tmsis = action.tmsis;

  auto grade = static_cast<std::uint8_t>(action.kind);
  std::uint8_t next = grade >= 3 ? 3 : static_cast<std::uint8_t>(grade + 1);
  if (next == static_cast<std::uint8_t>(ActionKind::kQuarantineUe) &&
      tmsis.empty())
    next = static_cast<std::uint8_t>(ActionKind::kIsolateNode);

  bool out_of_budget =
      source.actions_charged >= config_.policy.max_actions_per_source;
  if (next == grade || out_of_budget) {
    // Already at the top of the ladder (or budget spent): keep the current
    // action but refresh its TTL — the threat is still live.
    if (out_of_budget && next != grade) m().budget_exhausted->inc();
    std::uint64_t epoch = ++action.ttl_epoch;
    record("action #" + std::to_string(action.action_id) + " ttl-refresh " +
           to_string(action.kind) + " node=" + std::to_string(key.first) +
           " ue=" + std::to_string(key.second));
    ric().schedule_after(
        SimDuration::from_ms(static_cast<double>(action.ttl_ms)),
        [this, key, epoch] { ttl_expired(key, epoch); });
    return;
  }

  // Revert the current rung, then apply the next. The revert is part of
  // the escalation, not a recovery — no rollback counters.
  send_rollback_controls(key, action);
  PolicyRule rule;
  rule.action = static_cast<ActionKind>(next);
  rule.ttl_ms = action.ttl_ms;
  issue(key, rule, std::move(tmsis), verdict.flagged_at_us,
        /*escalation=*/true, /*cause=*/"escalation");
}

void MitigationXapp::rollback(const SourceKey& key, const char* reason,
                              obs::Counter* reason_counter) {
  auto it = active_.find(key);
  if (it == active_.end()) return;
  ActiveAction action = std::move(it->second);
  active_.erase(it);
  send_rollback_controls(key, action);
  m().rollbacks->inc();
  reason_counter->inc();
  std::int64_t now = now_us();
  if (now >= action.issued_at_us)
    m().time_to_recover_us->observe(
        static_cast<std::uint64_t>(now - action.issued_at_us));
  record("action #" + std::to_string(action.action_id) + " rollback " +
         to_string(action.kind) + " reason=" + reason +
         " node=" + std::to_string(key.first) +
         " ue=" + std::to_string(key.second) + " model=" + model_version());
  XSEC_LOG_INFO("mitigation", "rolled back ", to_string(action.kind),
                " on node ", key.first, " (", reason, ")");
}

void MitigationXapp::ttl_expired(SourceKey key, std::uint64_t epoch) {
  auto it = active_.find(key);
  if (it == active_.end() || it->second.ttl_epoch != epoch) return;
  rollback(key, "ttl", m().rollbacks_ttl);
}

void MitigationXapp::send_command(std::uint64_t node_id,
                                  const mobiflow::ControlCommand& cmd) {
  ric().send_control(this, node_id, oran::e2sm::kMobiFlowFunctionId, {},
                     mobiflow::encode_control(cmd));
}

void MitigationXapp::send_action_controls(const SourceKey& key,
                                          const ActiveAction& action) {
  mobiflow::ControlCommand cmd;
  switch (action.kind) {
    case ActionKind::kReleaseRrc:
      cmd.action = mobiflow::ControlCommand::Action::kReleaseStale;
      cmd.stale_age_ms = action.stale_age_ms;
      send_command(key.first, cmd);
      break;
    case ActionKind::kRateLimit:
      cmd.action = mobiflow::ControlCommand::Action::kRateLimit;
      cmd.rate_limit = action.rate_limit;
      cmd.rate_window_ms = action.rate_window_ms;
      send_command(key.first, cmd);
      break;
    case ActionKind::kQuarantineUe:
      for (std::uint64_t tmsi : action.tmsis) {
        cmd.action = mobiflow::ControlCommand::Action::kBlockTmsi;
        cmd.s_tmsi = tmsi;
        send_command(key.first, cmd);
      }
      break;
    case ActionKind::kIsolateNode:
      cmd.action = mobiflow::ControlCommand::Action::kIsolate;
      send_command(key.first, cmd);
      break;
  }
}

void MitigationXapp::send_rollback_controls(const SourceKey& key,
                                            const ActiveAction& action) {
  mobiflow::ControlCommand cmd;
  switch (action.kind) {
    case ActionKind::kReleaseRrc:
      // A release is not revertible; the rollback is bookkeeping only.
      break;
    case ActionKind::kRateLimit:
      cmd.action = mobiflow::ControlCommand::Action::kClearRateLimit;
      send_command(key.first, cmd);
      break;
    case ActionKind::kQuarantineUe:
      for (std::uint64_t tmsi : action.tmsis) {
        cmd.action = mobiflow::ControlCommand::Action::kUnblockTmsi;
        cmd.s_tmsi = tmsi;
        send_command(key.first, cmd);
      }
      break;
    case ActionKind::kIsolateNode:
      cmd.action = mobiflow::ControlCommand::Action::kDeisolate;
      send_command(key.first, cmd);
      break;
  }
}

void MitigationXapp::on_control_ack(std::uint64_t node_id,
                                    const oran::RicControlAck& ack) {
  if (!ack.success) m().actions_failed->inc();
  record(std::string("control ack ") + (ack.success ? "ok" : "failed") +
         " node=" + std::to_string(node_id) + " model=" + model_version());
}

oran::PolicyStatus MitigationXapp::on_policy(const oran::A1Policy& policy) {
  if (policy.policy_type != oran::kPolicyMitigation)
    return oran::PolicyStatus::kUnsupported;
  config_.policy.apply_a1(policy);
  config_.fast_path = policy.get_bool("fast_path", config_.fast_path);
  config_.tune_detection_on_fp =
      policy.get_bool("tune_detection_on_fp", config_.tune_detection_on_fp);
  return oran::PolicyStatus::kEnforced;
}

void MitigationXapp::tune_detection() {
  if (!config_.tune_detection_on_fp) return;
  double next = fp_threshold_scale_ * config_.fp_tuning_step;
  if (next > config_.fp_tuning_cap) next = config_.fp_tuning_cap;
  if (next == fp_threshold_scale_) return;  // capped out, nothing to send
  fp_threshold_scale_ = next;
  oran::A1Policy policy;
  policy.policy_type = oran::kPolicyDetectionTuning;
  policy.policy_id = "mitigate-fp-tuning";
  policy.content["threshold_scale"] = format_fixed(fp_threshold_scale_, 4);
  ric().apply_policy(config_.detection_xapp, policy);
  m().a1_tunings->inc();
  record("a1-tuning threshold_scale=" + format_fixed(fp_threshold_scale_, 4));
}

}  // namespace xsec::mitigate
