// Metrics registry: named counters, gauges, and log-bucketed histograms.
//
// The observability core for the whole pipeline. Design constraints:
//   - Dependency-free (only common/): the oran layer links it, so it can
//     pull in nothing above bytes/strings/clock.
//   - Allocation-free hot path: callers resolve a metric by name ONCE
//     (binding a raw pointer) and then increment/observe through the
//     pointer. The registry itself only allocates at bind time.
//   - Deterministic export: metrics iterate in sorted name order and hold
//     only integer/fixed-point state, so two identical seeded runs render
//     byte-identical snapshots.
//   - Lock-free friendly: each instrument is a single word (or a fixed
//     array of words) that could be made atomic without changing the API;
//     the sim is single-threaded so plain integers are used today.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xsec::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (queue depth, breaker state, threshold).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram over non-negative integer samples (microsecond
/// latencies, batch sizes). Bucket b counts samples of bit-width b, i.e.
/// bucket 0 holds the value 0 and bucket b>0 holds [2^(b-1), 2^b). The
/// bucket array is fixed-size, so observe() never allocates.
class Histogram {
 public:
  /// Buckets for bit widths 0..64 inclusive.
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Largest value bucket b can hold (inclusive upper edge): 2^b - 1.
  static std::uint64_t bucket_upper_edge(std::size_t b) {
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void observe(std::uint64_t v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    ++count_;
    sum_ += v;
    ++buckets_[bucket_of(v)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(std::size_t b) const { return buckets_[b]; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Upper edge of the bucket containing the q-th quantile (q in [0,1]).
  /// Log-bucketed, so this is an upper bound accurate to 2x.
  std::uint64_t quantile_upper(double q) const;

  void reset() {
    count_ = sum_ = min_ = max_ = 0;
    buckets_.fill(0);
  }

  /// Folds another histogram's samples into this one. Histograms are
  /// order-free (buckets + count/sum/min/max), so merging per-shard
  /// instruments produces exactly the histogram a single shared instrument
  /// would have held — the property that keeps sharded exports
  /// byte-identical to single-shard ones.
  void merge_from(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Name -> instrument registry. Instruments are owned by the registry and
/// never move once created, so the references handed out stay valid for
/// the registry's lifetime (components bind them once and increment
/// through the pointer on the hot path).
class MetricsRegistry {
 public:
  using CounterMap =
      std::map<std::string, std::unique_ptr<Counter>, std::less<>>;
  using GaugeMap = std::map<std::string, std::unique_ptr<Gauge>, std::less<>>;
  using HistogramMap =
      std::map<std::string, std::unique_ptr<Histogram>, std::less<>>;

  /// Get-or-create. A name identifies exactly one instrument kind; asking
  /// for the same name with the same kind returns the same instrument.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  const CounterMap& counters() const { return counters_; }
  const GaugeMap& gauges() const { return gauges_; }
  const HistogramMap& histograms() const { return histograms_; }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every instrument (names stay registered).
  void reset();

  /// Moves this registry's accumulated values into `target` (get-or-create
  /// by name: counters add, gauges add, histograms merge) and resets the
  /// local instruments. Instruments currently at zero are skipped, so a
  /// drain never materializes names in `target` that saw no activity —
  /// which keeps the target's rendered export independent of how many
  /// shard registries drained into it.
  void drain_into(MetricsRegistry& target);

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

/// One private registry per RIC shard. Worker threads bind and bump
/// instruments only in their own shard's registry — each instrument is a
/// separate heap allocation in a shard-owned map, so hot counters never
/// share a cache line across shards and need no atomics. The coordinator
/// calls drain_into() at a merge barrier (while workers are idle) to fold
/// every shard into the one exported registry, always in shard order
/// 0..N-1; since counter sums and histogram buckets are partition-
/// invariant, the merged export is byte-identical at any shard count.
class ShardedMetrics {
 public:
  explicit ShardedMetrics(std::size_t shards);

  std::size_t shard_count() const { return shards_.size(); }
  MetricsRegistry& shard(std::size_t i) { return *shards_[i]; }
  const MetricsRegistry& shard(std::size_t i) const { return *shards_[i]; }

  /// Drains every shard registry into `target` in shard order. Must only
  /// run while no worker is touching its shard registry (post-barrier).
  void drain_into(MetricsRegistry& target);

 private:
  std::vector<std::unique_ptr<MetricsRegistry>> shards_;
};

}  // namespace xsec::obs
