#include "obs/trace.hpp"

#include <algorithm>

namespace xsec::obs {

void Span::finish() {
  if (!tracer_) return;
  tracer_->finish_span(id_);
  tracer_ = nullptr;
  id_ = 0;
}

Span Tracer::begin(std::string_view name, std::uint64_t trace_id,
                   std::uint32_t parent_id) {
  OpenSpan span;
  span.span_id = next_span_id_++;
  span.trace_id = trace_id != 0 ? trace_id
                 : open_.empty() ? 0
                                 : open_.back().trace_id;
  span.parent_id = parent_id != 0 ? parent_id : current();
  span.name = std::string(name);
  span.start_us = now().us;
  ++spans_started_;
  if (span.parent_id == 0 && span.trace_id != 0)
    note_root(span.trace_id, span.span_id);
  open_.push_back(std::move(span));
  return Span(this, open_.back().span_id);
}

std::uint32_t Tracer::record(std::string_view name, std::uint64_t trace_id,
                             std::uint32_t parent_id, SimTime start,
                             SimTime end) {
  SpanRecord record;
  record.span_id = next_span_id_++;
  record.trace_id = trace_id;
  record.parent_id = parent_id;
  record.name = std::string(name);
  record.start_us = start.us;
  record.end_us = end.us;
  ++spans_started_;
  if (parent_id == 0 && trace_id != 0) note_root(trace_id, record.span_id);
  std::uint32_t id = record.span_id;
  complete(std::move(record));
  return id;
}

void Tracer::finish_span(std::uint32_t id) {
  // RAII scoping makes finishes LIFO, but moved-from / reassigned spans can
  // finish out of order; find the entry wherever it sits.
  auto it = std::find_if(open_.begin(), open_.end(),
                         [id](const OpenSpan& s) { return s.span_id == id; });
  if (it == open_.end()) return;
  SpanRecord record;
  record.span_id = it->span_id;
  record.parent_id = it->parent_id;
  record.trace_id = it->trace_id;
  record.name = std::move(it->name);
  record.start_us = it->start_us;
  record.end_us = now().us;
  open_.erase(it);
  complete(std::move(record));
}

void Tracer::complete(SpanRecord record) {
  ++spans_finished_;
  if (metrics_) {
    std::int64_t d = record.duration_us();
    metrics_->histogram("span." + record.name)
        .observe(d > 0 ? static_cast<std::uint64_t>(d) : 0);
  }
  finished_.push_back(std::move(record));
  while (finished_.size() > capacity_) {
    finished_.pop_front();
    ++spans_evicted_;
  }
}

void Tracer::note_root(std::uint64_t trace_id, std::uint32_t span_id) {
  auto [it, inserted] = roots_.emplace(trace_id, span_id);
  if (!inserted) {
    it->second = span_id;  // a fresh root supersedes (trace-id reuse)
    return;
  }
  root_order_.push_back(trace_id);
  while (root_order_.size() > kMaxRoots) {
    roots_.erase(root_order_.front());
    root_order_.pop_front();
  }
}

std::uint32_t Tracer::root_of(std::uint64_t trace_id) const {
  auto it = roots_.find(trace_id);
  return it == roots_.end() ? 0 : it->second;
}

void Tracer::reset() {
  open_.clear();
  finished_.clear();
  roots_.clear();
  root_order_.clear();
  next_span_id_ = 1;
  spans_started_ = spans_finished_ = spans_evicted_ = 0;
}

}  // namespace xsec::obs
