#include "obs/export.hpp"

#include "common/strings.hpp"

namespace xsec::obs {

namespace {

/// Deterministic fixed-point rendering for gauge values. Gauges hold
/// operator-scale levels (thresholds, flags, depths); six decimals is
/// enough and never exercises locale/float-format variance.
std::string render_double(double v) { return format_fixed(v, 6); }

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "xsec_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry& metrics) {
  std::string out;
  for (const auto& [name, c] : metrics.counters()) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : metrics.gauges()) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + render_double(g->value()) + "\n";
  }
  for (const auto& [name, h] : metrics.histograms()) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative buckets, only at occupied edges (log2 buckets make the
    // full ladder 65 lines of mostly zeros).
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      cumulative += n;
      out += pname + "_bucket{le=\"" +
             std::to_string(Histogram::bucket_upper_edge(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += pname + "_sum " + std::to_string(h->sum()) + "\n";
    out += pname + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

std::string render_json(const MetricsRegistry& metrics, const Tracer* tracer,
                        std::size_t max_spans) {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : metrics.counters()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : metrics.gauges()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + render_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"min\":" + std::to_string(h->min()) +
           ",\"max\":" + std::to_string(h->max()) +
           ",\"p50\":" + std::to_string(h->quantile_upper(0.5)) +
           ",\"p99\":" + std::to_string(h->quantile_upper(0.99)) +
           ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "[" + std::to_string(Histogram::bucket_upper_edge(b)) + "," +
             std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}";
  if (tracer) {
    out += ",\"spans\":{\"started\":" + std::to_string(tracer->spans_started()) +
           ",\"finished\":" + std::to_string(tracer->spans_finished()) +
           ",\"evicted\":" + std::to_string(tracer->spans_evicted()) +
           ",\"recent\":[";
    const auto& finished = tracer->finished();
    std::size_t start =
        finished.size() > max_spans ? finished.size() - max_spans : 0;
    for (std::size_t i = start; i < finished.size(); ++i) {
      const SpanRecord& s = finished[i];
      if (i != start) out += ',';
      out += "{\"name\":";
      append_json_string(out, s.name);
      out += ",\"trace\":" + std::to_string(s.trace_id) +
             ",\"id\":" + std::to_string(s.span_id) +
             ",\"parent\":" + std::to_string(s.parent_id) +
             ",\"start_us\":" + std::to_string(s.start_us) +
             ",\"end_us\":" + std::to_string(s.end_us) + "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

}  // namespace xsec::obs
