// Metric / span exporters.
//
// Two machine-readable snapshot formats, both byte-stable for a fixed
// seed: instruments render in sorted name order, counters and histogram
// buckets as plain integers, gauges in fixed-point — no wall-clock
// timestamps, pointers, or float round-trips anywhere.
//   - Prometheus text exposition (what an SMO-side scraper ingests);
//     metric names are sanitized ('.' -> '_') and prefixed "xsec_".
//   - JSON snapshot (metrics plus the most recent completed spans), for
//     the SDL-published report and offline diffing.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xsec::obs {

/// Prometheus text exposition of every instrument in the registry.
std::string render_prometheus(const MetricsRegistry& metrics);

/// JSON snapshot: all metrics, plus (when a tracer is given) span totals
/// and the `max_spans` most recent completed spans.
std::string render_json(const MetricsRegistry& metrics,
                        const Tracer* tracer = nullptr,
                        std::size_t max_spans = 64);

/// "agent.node1001.records" -> "xsec_agent_node1001_records".
std::string prometheus_name(const std::string& name);

}  // namespace xsec::obs
