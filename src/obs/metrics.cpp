#include "obs/metrics.hpp"

namespace xsec::obs {

std::uint64_t Histogram::quantile_upper(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based, rounded up.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return bucket_upper_edge(b);
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::drain_into(MetricsRegistry& target) {
  for (auto& [name, c] : counters_) {
    if (c->value() != 0) target.counter(name).inc(c->value());
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    if (g->value() != 0.0) target.gauge(name).add(g->value());
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    if (h->count() != 0) target.histogram(name).merge_from(*h);
    h->reset();
  }
}

ShardedMetrics::ShardedMetrics(std::size_t shards) {
  shards_.reserve(shards == 0 ? 1 : shards);
  for (std::size_t i = 0; i < (shards == 0 ? 1 : shards); ++i)
    shards_.push_back(std::make_unique<MetricsRegistry>());
}

void ShardedMetrics::drain_into(MetricsRegistry& target) {
  for (auto& shard : shards_) shard->drain_into(target);
}

}  // namespace xsec::obs
