// Sim-time tracing: spans with parent/child links per indication.
//
// A Span measures one pipeline stage. Because the simulation is
// discrete-event, work inside a single event callback has zero sim
// duration — the latencies that matter span EVENTS (batching delay, E2
// transit including retransmission, deferred LLM analysis). The tracer
// therefore supports two styles:
//   - RAII spans (begin/finish) timed by the injected sim clock, which
//     also maintain an active-span stack so nested stages link to their
//     parent automatically, even across module boundaries;
//   - explicitly timed spans (record) for cross-event latencies where the
//     caller knows the true start time (e.g. the indication's sent_at
//     stamp carried on the wire).
//
// Spans carry a trace id grouping every stage of one indication (or one
// incident); the tracer remembers each trace's root span so later stages
// recorded from other components can attach to it. Span ids are assigned
// from a monotonic counter, so a fixed-seed run produces a byte-identical
// span log. Completed spans live in a bounded ring; every finished span
// also feeds a `span.<name>` histogram in the metrics registry, so
// latency distributions survive ring eviction.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"

namespace xsec::obs {

class Tracer;

/// One completed span.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  std::int64_t duration_us() const { return end_us - start_us; }
};

/// RAII handle for an open span. Movable; finishes on destruction.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  void finish();
  std::uint32_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint32_t id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_ = nullptr;
  std::uint32_t id_ = 0;
};

class Tracer {
 public:
  explicit Tracer(MetricsRegistry* metrics = nullptr) : metrics_(metrics) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Sim clock for RAII spans and for components that need "now" at
  /// record() time. Without a clock, begin()/current-time reads return
  /// SimTime{0} (spans still nest and count, with zero duration).
  void set_clock(std::function<SimTime()> now) { now_ = std::move(now); }
  bool has_clock() const { return static_cast<bool>(now_); }
  SimTime now() const { return now_ ? now_() : SimTime{0}; }

  /// Completed-span ring capacity (oldest evicted first).
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }

  /// Opens a span timed from now. trace_id 0 inherits the innermost open
  /// span's trace; parent_id 0 nests under the innermost open span (root
  /// if none is open).
  Span begin(std::string_view name, std::uint64_t trace_id = 0,
             std::uint32_t parent_id = 0);

  /// Records an externally timed, already-finished span. Returns its id so
  /// later stages can parent to it.
  std::uint32_t record(std::string_view name, std::uint64_t trace_id,
                       std::uint32_t parent_id, SimTime start, SimTime end);

  /// Innermost open span id (0 when none) — lets a component nest under
  /// whatever stage is driving it without knowing who that is.
  std::uint32_t current() const {
    return open_.empty() ? 0 : open_.back().span_id;
  }
  /// Root span id of a trace (0 if unknown or evicted).
  std::uint32_t root_of(std::uint64_t trace_id) const;

  const std::deque<SpanRecord>& finished() const { return finished_; }
  std::size_t spans_started() const { return spans_started_; }
  std::size_t spans_finished() const { return spans_finished_; }
  /// Completed spans evicted from the ring (their histograms survive).
  std::size_t spans_evicted() const { return spans_evicted_; }

  void reset();

 private:
  friend class Span;

  struct OpenSpan {
    std::uint32_t span_id = 0;
    std::uint32_t parent_id = 0;
    std::uint64_t trace_id = 0;
    std::string name;
    std::int64_t start_us = 0;
  };

  /// Bounded trace_id -> root span map (FIFO eviction).
  static constexpr std::size_t kMaxRoots = 8192;

  void finish_span(std::uint32_t id);
  void complete(SpanRecord record);
  void note_root(std::uint64_t trace_id, std::uint32_t span_id);

  MetricsRegistry* metrics_ = nullptr;
  std::function<SimTime()> now_;
  std::size_t capacity_ = 4096;
  std::uint32_t next_span_id_ = 1;
  std::vector<OpenSpan> open_;
  std::deque<SpanRecord> finished_;
  std::map<std::uint64_t, std::uint32_t> roots_;
  std::deque<std::uint64_t> root_order_;
  std::size_t spans_started_ = 0;
  std::size_t spans_finished_ = 0;
  std::size_t spans_evicted_ = 0;
};

/// The observability bundle a component binds against: one registry + one
/// tracer sharing it. The pipeline owns a single instance and injects it
/// everywhere; components constructed standalone (unit tests) lazily
/// create a private one so instrumentation never needs null checks.
struct Observability {
  MetricsRegistry metrics;
  Tracer tracer{&metrics};
  /// Host-dependent instrumentation (transport syscall counts, pump
  /// wakeups): values that legitimately differ per I/O backend, pump mode,
  /// and kernel. Kept OUT of `metrics` so the deterministic exports — the
  /// byte-identity oracle across backends / shard counts / pump modes —
  /// never see them; render this registry separately
  /// (`render_prometheus(obs.host)`) when the numbers are wanted.
  MetricsRegistry host;

  void set_clock(std::function<SimTime()> now) {
    tracer.set_clock(std::move(now));
  }
};

}  // namespace xsec::obs
