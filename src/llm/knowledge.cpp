#include "llm/knowledge.hpp"

#include <cassert>

namespace xsec::llm {

std::string to_string(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kSignalingStorm: return "signaling-storm";
    case SignatureKind::kTmsiReplay: return "tmsi-replay";
    case SignatureKind::kPlaintextIdentityUplink:
      return "plaintext-identity-uplink";
    case SignatureKind::kIdentityRequestOutOfOrder:
      return "identity-request-out-of-order";
    case SignatureKind::kNullCipherDowngrade: return "null-cipher-downgrade";
  }
  return "unknown";
}

const std::vector<AttackKnowledge>& knowledge_base() {
  static const std::vector<AttackKnowledge> kb = {
      {SignatureKind::kSignalingStorm,
       "BTS resource depletion DoS (signaling storm)",
       "BTS DoS / Touching the Untouchables [Kim et al., S&P'19]",
       "denial-of-service",
       "A rogue UE (commodity SDR running a modified open-source stack) "
       "within radio range of the cell.",
       "TS 38.331 expects each RRCSetupRequest to be followed by "
       "RRCSetupComplete and a NAS registration that proceeds to "
       "authentication. A rapid succession of connection setups from a "
       "stream of previously unseen RNTIs, none of which progresses past "
       "the authentication stage, does not match any compliant UE "
       "behaviour; it is the signature of deliberate RRC/NGAP signaling "
       "load designed to exhaust the gNB's UE-context table.",
       "Legitimate UEs receive RRCReject once the admission table is full; "
       "service in the cell degrades or stops. The gNB wastes CPU and "
       "memory on half-open contexts.",
       {"Release the half-open UE contexts via RIC Control (UEContextRelease)",
        "Rate-limit RRCSetupRequest admissions per radio-resource fingerprint",
        "Shorten the context-setup garbage-collection timer under load"}},

      {SignatureKind::kTmsiReplay,
       "Blind DoS via S-TMSI replay",
       "Blind DoS [Kim et al., S&P'19]",
       "denial-of-service (targeted)",
       "A MiTM attacker or rogue UE that sniffed the victim's 5G-S-TMSI "
       "from paging or a previous connection.",
       "The 5G-S-TMSI presented in an RRCSetupRequest (ng-5G-S-TMSI-Part1, "
       "TS 38.331 §6.2.2) is a temporary identity bound to one registered "
       "UE. Observing the same S-TMSI presented concurrently by a "
       "different radio context means the identifier was replayed: a "
       "compliant network never sees one S-TMSI in two simultaneous UE "
       "contexts. The replayed connection causes the network to tear down "
       "or desynchronize the victim's legitimate context.",
       "The victim UE is silently disconnected or loses incoming service "
       "(blind DoS) without any indication on the device.",
       {"Reject RRC setups whose S-TMSI is active in another live context",
        "Trigger GUTI reallocation for the affected subscriber",
        "Page the genuine UE to re-authenticate and resynchronize"}},

      {SignatureKind::kPlaintextIdentityUplink,
       "Uplink identity extraction (SUCI downgrade)",
       "AdaptOver-style uplink overshadowing [Erni et al., MobiCom'22]",
       "privacy / identity extraction",
       "An overshadowing MiTM with a software-defined radio close enough "
       "to the victim to dominate its uplink signal.",
       "TS 33.501 requires the SUPI to be concealed as a SUCI under the "
       "home-network public key; the null protection scheme (scheme id 0) "
       "transmits the MSIN in cleartext and is reserved for unprovisioned "
       "or emergency cases. A registration that is otherwise fully "
       "standard-compliant but carries a null-scheme SUCI discloses the "
       "subscriber's permanent identity to any passive observer. Note the "
       "message SEQUENCE is benign — only the identity encoding deviates, "
       "which is why this attack is the hardest to distinguish from "
       "normal traffic.",
       "The victim's permanent identity (SUPI/IMSI) leaks, enabling "
       "location tracking and linkability across sessions.",
       {"Alert the subscriber's home network of the cleartext disclosure",
        "Force GUTI reallocation and re-registration with a protected SUCI",
        "Audit the cell for uplink overshadowing activity"}},

      {SignatureKind::kIdentityRequestOutOfOrder,
       "Downlink identity extraction (IMSI catching)",
       "LTrack / downlink Identity Request injection [Kotuliak et al., "
       "USENIX Sec'22]",
       "privacy / identity extraction",
       "A MiTM relay that overwrites downlink NAS messages before "
       "security activation.",
       "In the 5G registration call flow (TS 24.501 §5.5.1), a "
       "RegistrationRequest carrying a valid SUCI is followed by an "
       "AuthenticationRequest; an IdentityRequest at that point is "
       "out-of-order, because the network already holds a resolvable "
       "identity. A pre-security IdentityRequest answered with a "
       "plaintext identity indicates a downlink message-overwrite attack "
       "harvesting the subscriber's permanent identifier.",
       "The UE reveals its permanent identity in cleartext; the attacker "
       "can track the subscriber's presence and movements.",
       {"Flag and drop pre-security IdentityRequests for UEs that "
        "presented a valid SUCI",
        "Notify the operator of a probable MiTM relay in the cell",
        "Re-run registration through a different cell and compare flows"}},

      {SignatureKind::kNullCipherDowngrade,
       "Null cipher & integrity downgrade",
       "Security-mode bidding-down [Hussain et al., CCS'19 (5GReasoner)]",
       "security downgrade",
       "A MiTM relay tampering with the security-mode negotiation, or a "
       "compromised/misconfigured network element.",
       "TS 33.501 §5.3 mandates that NEA0 (null ciphering) and NIA0 (null "
       "integrity) are only acceptable for unauthenticated emergency "
       "sessions. A SecurityModeCommand selecting NEA0/NIA0 for a UE that "
       "advertised stronger algorithms in its security capabilities is a "
       "bidding-down attack: all subsequent NAS and user traffic flows "
       "unprotected.",
       "All signalling and user-plane data for the session are readable "
       "and modifiable over the air.",
       {"Reject the security context and re-run the security mode "
        "procedure with non-null algorithms",
        "Release and re-authenticate the affected UE",
        "Audit the gNB/AMF algorithm priority configuration for tampering"}},
  };
  return kb;
}

const AttackKnowledge& lookup(SignatureKind kind) {
  for (const auto& entry : knowledge_base())
    if (entry.signature == kind) return entry;
  assert(false && "signature missing from knowledge base");
  return knowledge_base().front();
}

}  // namespace xsec::llm
