// Retrieval-augmented generation over cellular specification knowledge.
//
// The paper's §5 proposes RAG over 3GPP documents to ground LLM reasoning
// and curb hallucination. This module implements the retrieval half: a
// built-in corpus of specification-derived passages (the clauses the five
// attacks hinge on) indexed with BM25, a prompt augmenter that injects the
// top-k passages, and a citation hook the expert engine uses to reference
// clauses in its narratives.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace xsec::llm {

struct SpecPassage {
  std::string ref;   // e.g. "TS 33.501 §6.12.2"
  std::string title;
  std::string text;
};

/// The built-in specification corpus.
const std::vector<SpecPassage>& spec_corpus();

struct RetrievalHit {
  double score = 0.0;
  const SpecPassage* passage = nullptr;
};

class SpecRetriever {
 public:
  /// Indexes the built-in corpus (or a caller-supplied one).
  SpecRetriever();
  explicit SpecRetriever(const std::vector<SpecPassage>* corpus);

  /// BM25 top-k retrieval; hits are score-descending, zero-score matches
  /// are dropped.
  std::vector<RetrievalHit> query(const std::string& text,
                                  std::size_t k = 3) const;

  /// Appends a <SPEC_CONTEXT> block with the top-k passages relevant to
  /// the prompt's telemetry and task (the paper's prompt augmentation).
  std::string augment_prompt(const std::string& prompt,
                             std::size_t k = 3) const;

  std::size_t corpus_size() const { return corpus_->size(); }

 private:
  void build_index();

  const std::vector<SpecPassage>* corpus_;
  // BM25 state: per-term document frequency and per-doc term counts.
  std::map<std::string, std::size_t> document_frequency_;
  std::vector<std::map<std::string, std::size_t>> term_counts_;
  std::vector<std::size_t> doc_lengths_;
  double average_length_ = 0.0;
};

/// Tokenization shared with tests: lowercase alphanumeric words, 3GPP
/// references kept intact ("38.331" stays one token).
std::vector<std::string> retrieval_tokens(const std::string& text);

}  // namespace xsec::llm
