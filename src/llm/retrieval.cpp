#include "llm/retrieval.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace xsec::llm {

const std::vector<SpecPassage>& spec_corpus() {
  static const std::vector<SpecPassage> corpus = {
      {"TS 38.331 §5.3.3", "RRC connection establishment",
       "The UE initiates RRC connection establishment by transmitting an "
       "RRCSetupRequest on the common control channel, carrying an initial "
       "UE identity (a random value or the ng-5G-S-TMSI-Part1) and an "
       "establishment cause. The network responds with RRCSetup, after "
       "which the UE sends RRCSetupComplete including the initial NAS "
       "message. Timer T300 supervises the request; on expiry the UE "
       "retransmits or abandons the attempt."},
      {"TS 38.331 §5.3.15", "RRC reject and wait time",
       "On receiving RRCReject the UE waits for the indicated wait time "
       "before a new connection attempt. Networks under admission control "
       "pressure use RRCReject to shed load; repeated rejects to "
       "legitimate devices indicate resource exhaustion at the cell."},
      {"TS 24.501 §5.5.1", "5GS registration procedure",
       "The initial registration carries a 5GS mobile identity: a SUCI, or "
       "a 5G-GUTI from a previous registration. A RegistrationRequest with "
       "a resolvable identity is followed by the authentication procedure; "
       "the AMF requests an identity (IdentityRequest) only when the "
       "presented GUTI cannot be resolved."},
      {"TS 24.501 §5.4.3", "NAS identification procedure",
       "The identification procedure lets the network request a mobile "
       "identity of a specified type. Before NAS security is activated only "
       "the SUCI may be requested; a permanent plaintext identifier must "
       "never be transmitted over the radio interface outside the null "
       "protection scheme's narrow emergency provisions."},
      {"TS 33.501 §6.12", "Subscription identifier privacy (SUCI)",
       "The SUPI is concealed as a SUCI using the home network public key "
       "(ECIES profiles). Protection scheme identifier 0 is the null "
       "scheme: the scheme output equals the MSIN in cleartext. The null "
       "scheme is used only for unauthenticated emergency sessions or when "
       "the home network has provisioned no key; any other use discloses "
       "the permanent identity to passive eavesdroppers."},
      {"TS 33.501 §5.3.2", "Ciphering and integrity requirements",
       "NEA0 (null ciphering) and NIA0 (null integrity) shall only be used "
       "for unauthenticated emergency sessions. The network selects the "
       "highest-priority algorithm from the UE security capabilities; the "
       "replayed capabilities in the SecurityModeCommand let the UE detect "
       "a bidding-down modification of its advertised capabilities."},
      {"TS 33.501 §6.1.3", "5G-AKA authentication",
       "The AUSF derives an authentication vector (RAND, AUTN, XRES*). The "
       "UE verifies AUTN to authenticate the network and returns RES*; a "
       "MAC failure in AUTN indicates the challenge was not produced by "
       "the subscriber's home network."},
      {"TS 23.003 §2.10", "5G-S-TMSI structure and usage",
       "The 5G-S-TMSI (AMF Set ID, AMF Pointer, 5G-TMSI) is a temporary "
       "identity uniquely assigned to one registered UE within an AMF set. "
       "It is reallocated by the network at registration; a single value "
       "must never identify two simultaneously active radio contexts."},
      {"TS 38.473 §8.4", "F1AP RRC message transfer",
       "The gNB-DU forwards uplink RRC messages to the gNB-CU in UL RRC "
       "MESSAGE TRANSFER messages carrying the RRC container and the UE's "
       "gNB-DU UE F1AP ID; downlink RRC rides DL RRC MESSAGE TRANSFER. "
       "These interfaces expose every L3 control message for inspection."},
      {"TS 38.413 §8.6", "NGAP NAS transport",
       "Initial UE messages and uplink/downlink NAS transport between the "
       "RAN and the AMF carry the NAS PDU together with RAN and AMF UE "
       "NGAP identities, providing the correlation needed to attribute "
       "NAS flows to radio contexts."},
      {"O-RAN.WG3.E2AP", "E2 interface primitives",
       "The E2 interface supports four primitives: report, insert, control "
       "and policy. xApps subscribe to RAN functions through RIC "
       "subscriptions; RAN nodes deliver telemetry in RIC Indication "
       "messages and execute RIC Control requests such as UE context "
       "release."},
      {"TS 38.331 §5.3.8", "RRC release",
       "The network releases an RRC connection with RRCRelease. Contexts "
       "that never complete security activation are released by local "
       "timers; a burst of such releases indicates connection attempts "
       "that were abandoned mid-procedure."},
  };
  return corpus;
}

std::vector<std::string> retrieval_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '.') {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      while (!current.empty() && current.back() == '.') current.pop_back();
      if (current.size() > 1) tokens.push_back(current);
      current.clear();
    }
  }
  while (!current.empty() && current.back() == '.') current.pop_back();
  if (current.size() > 1) tokens.push_back(current);
  return tokens;
}

SpecRetriever::SpecRetriever() : corpus_(&spec_corpus()) { build_index(); }

SpecRetriever::SpecRetriever(const std::vector<SpecPassage>* corpus)
    : corpus_(corpus) {
  build_index();
}

void SpecRetriever::build_index() {
  term_counts_.resize(corpus_->size());
  doc_lengths_.resize(corpus_->size());
  std::size_t total_length = 0;
  for (std::size_t d = 0; d < corpus_->size(); ++d) {
    const SpecPassage& passage = (*corpus_)[d];
    auto tokens = retrieval_tokens(passage.ref + " " + passage.title + " " +
                                   passage.text);
    doc_lengths_[d] = tokens.size();
    total_length += tokens.size();
    for (const std::string& token : tokens) ++term_counts_[d][token];
    for (const auto& [token, count] : term_counts_[d])
      ++document_frequency_[token];
  }
  average_length_ = corpus_->empty()
                        ? 1.0
                        : static_cast<double>(total_length) /
                              static_cast<double>(corpus_->size());
}

std::vector<RetrievalHit> SpecRetriever::query(const std::string& text,
                                               std::size_t k) const {
  constexpr double kB = 0.75;
  constexpr double kK1 = 1.2;
  const double n_docs = static_cast<double>(corpus_->size());

  std::vector<RetrievalHit> hits;
  for (std::size_t d = 0; d < corpus_->size(); ++d) {
    double score = 0.0;
    for (const std::string& token : retrieval_tokens(text)) {
      auto tf_it = term_counts_[d].find(token);
      if (tf_it == term_counts_[d].end()) continue;
      double df = static_cast<double>(document_frequency_.at(token));
      double idf = std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
      double tf = static_cast<double>(tf_it->second);
      double norm = kK1 * (1.0 - kB + kB * static_cast<double>(
                                               doc_lengths_[d]) /
                                          average_length_);
      score += idf * tf * (kK1 + 1.0) / (tf + norm);
    }
    if (score > 0.0) hits.push_back({score, &(*corpus_)[d]});
  }
  std::sort(hits.begin(), hits.end(),
            [](const RetrievalHit& a, const RetrievalHit& b) {
              return a.score > b.score;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::string SpecRetriever::augment_prompt(const std::string& prompt,
                                          std::size_t k) const {
  auto hits = query(prompt, k);
  if (hits.empty()) return prompt;
  std::string out = prompt;
  out +=
      "\nRelevant specification context (retrieved):\n<SPEC_CONTEXT>\n";
  for (const RetrievalHit& hit : hits) {
    out += "[" + hit.passage->ref + " — " + hit.passage->title + "] " +
           hit.passage->text + "\n";
  }
  out += "</SPEC_CONTEXT>\n";
  return out;
}

}  // namespace xsec::llm
