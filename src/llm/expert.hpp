// The expert analysis engine behind the simulated LLMs.
//
// Extracts spec-grounded evidence from a telemetry trace (counts, identity
// relations, ordering violations, algorithm selections), matches it against
// the knowledge base, and generates the four insight classes the paper asks
// of an LLM: classification, explanation, attribution, and remediation.
// Model personalities (personalities.hpp) run this engine with a masked
// evidence set to reproduce Table 3's per-model hit/miss pattern.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "llm/knowledge.hpp"
#include "mobiflow/trace.hpp"

namespace xsec::llm {

/// Aggregate statistics extracted from a trace window.
struct WindowStats {
  std::size_t total_records = 0;
  std::size_t setup_requests = 0;
  /// Setups presenting a fresh random identity (no S-TMSI) — what a
  /// signaling storm consists of; TMSI-bearing setups are returning
  /// subscribers (or a replay attack, handled separately).
  std::size_t setup_requests_fresh = 0;
  /// Fresh setups whose UE never produced an AuthenticationResponse even
  /// though the window extends well past the setup (not merely truncated).
  std::size_t abandoned_fresh_setups = 0;
  std::size_t distinct_setup_rntis = 0;
  std::size_t distinct_ues = 0;
  std::size_t auth_requests = 0;
  std::size_t auth_responses = 0;
  std::size_t registration_accepts = 0;
  /// Median gap between consecutive RRCSetupRequests (us); 0 if < 2.
  std::int64_t median_setup_gap_us = 0;
  /// S-TMSIs presented in uplink by more than one UE context.
  std::vector<std::uint64_t> replayed_tmsis;
  /// Plaintext permanent identities observed, with the message they rode.
  std::vector<std::pair<std::string, std::string>> plaintext_identities;
  /// UEs that received an IdentityRequest after presenting a protected SUCI.
  std::vector<std::uint64_t> out_of_order_identity_ues;
  /// UEs whose SecurityModeCommand selected NEA0 and/or NIA0.
  std::vector<std::uint64_t> null_cipher_ues;
  /// Uplink registrations that carried a null-scheme SUCI directly.
  std::size_t null_scheme_registrations = 0;
  /// RRCReleases tearing down contexts that never reached a security
  /// context (no cipher state, no allocated TMSI) — the aftermath of a
  /// half-open connection flood being garbage collected.
  std::size_t incomplete_releases = 0;
};

WindowStats extract_stats(const mobiflow::Trace& trace);

/// One piece of matched evidence, with the concrete facts that support it.
struct Evidence {
  SignatureKind kind;
  double confidence = 0.0;  // 0..1
  std::string details;      // grounded in extracted values
};

/// Full-competence evidence extraction (every rule applied).
std::vector<Evidence> extract_evidence(const WindowStats& stats);

struct Analysis {
  bool anomalous = false;
  std::vector<Evidence> evidence;  // ranked by confidence, descending
  std::string narrative;           // generated analyst response text
};

class ExpertEngine {
 public:
  /// Analyzes a trace considering only evidence kinds in `visible` (empty
  /// mask = full competence). This is the personality hook.
  Analysis analyze(const mobiflow::Trace& trace,
                   const std::vector<SignatureKind>& visible_kinds = {}) const;
};

/// Renders the analyst-style response text for an analysis (verdict,
/// explanation, top-3 attacks, implications, remediation, attribution).
std::string render_narrative(const Analysis& analysis,
                             const WindowStats& stats);

}  // namespace xsec::llm
