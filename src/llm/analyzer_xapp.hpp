// LLM Analyzer xApp (paper §3.3, Figure 3).
//
// Receives anomalous windows from MobiWatch over the message router, builds
// the zero-shot analyst prompt, queries the configured LLM client, and:
//   - cross-compares the LLM verdict with MobiWatch's (contradictions are
//     escalated to the human-supervision queue),
//   - persists the full analysis report to the SDL,
//   - optionally issues closed-loop RIC Control remediation for attacks
//     whose knowledge-base entry maps to a data-plane action.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "detect/mobiwatch.hpp"
#include "llm/client.hpp"
#include "llm/knowledge.hpp"
#include "mobiflow/agent.hpp"
#include "oran/xapp.hpp"

namespace xsec::llm {

/// Machine-readable classification of one incident, published on the
/// message router (kMtIncidentVerdict) for downstream consumers — the
/// mitigation xApp keys its policy engine off these. A human-readable
/// AnalysisReport covering the same incident goes to the SDL in parallel.
struct IncidentVerdict {
  std::uint64_t incident_id = 0;
  std::uint64_t node_id = 0;
  std::uint64_t source_ue = 0;
  std::string detector;
  double score = 0.0;
  double threshold = 0.0;
  /// LLM cross-comparison result: false means the LLM judged the flagged
  /// window benign (false-positive evidence, drives rollback).
  bool llm_agrees = false;
  std::vector<std::string> candidate_attacks;
  /// S-TMSIs presented from >= 2 distinct UE contexts inside the flagged
  /// window — replay suspects eligible for quarantine.
  std::vector<std::uint64_t> suspect_tmsis;
  /// Newest telemetry timestamp in the flagged window (sim time).
  std::int64_t flagged_at_us = 0;

  Bytes serialize() const;
  static Result<IncidentVerdict> deserialize(const Bytes& wire);
};

/// Final structured output of the analyzer for one incident.
struct AnalysisReport {
  std::uint64_t incident_id = 0;
  std::string detector;  // MobiWatch model that flagged it
  double anomaly_score = 0.0;
  std::string model;     // LLM that analyzed it
  bool llm_agrees = false;
  std::string response_text;
  std::vector<std::string> candidate_attacks;
  bool remediation_issued = false;

  std::string to_text() const;
};

struct AnalyzerConfig {
  /// Model personality to query (must exist for SimLlmClient masking;
  /// unknown names run at full competence).
  std::string model = "ChatGPT-4o";
  std::string sdl_namespace = "xsec-reports";
  /// Issue RIC Control release commands for DoS-class incidents.
  bool auto_remediate = false;
  /// Augment prompts with retrieved 3GPP specification passages (§5's
  /// RAG proposal).
  bool use_rag = false;
  /// Incident aggregation: wait for this many trailing telemetry records
  /// (from the SDL stream) before analyzing a flagged window, so evidence
  /// that completes just after the flag (e.g. a storm's missing
  /// authentication responses) is visible to the analyst. 0 = immediate.
  std::size_t defer_records = 0;
  /// SDL namespace MobiWatch streams telemetry into.
  std::string telemetry_namespace = "mobiflow";
  PromptTemplate prompt_template;
};

class LlmAnalyzerXapp : public oran::XApp {
 public:
  LlmAnalyzerXapp(AnalyzerConfig config, std::shared_ptr<LlmClient> client);

  void on_start() override;
  /// A1 response-control policy: "auto_remediate" and "use_rag" toggles.
  oran::PolicyStatus on_policy(const oran::A1Policy& policy) override;

  std::size_t incidents_analyzed() const {
    return m().incidents_analyzed->value();
  }
  std::size_t contradictions() const { return m().contradictions->value(); }
  std::size_t remediations_issued() const {
    return m().remediations_issued->value();
  }
  std::size_t incidents_pending() const { return pending_.size(); }
  /// Incidents put back on the pending queue after a failed LLM query.
  std::size_t llm_deferrals() const { return m().deferrals->value(); }
  /// Incidents abandoned after exhausting the per-incident query budget.
  std::size_t incidents_dropped() const {
    return m().incidents_dropped->value();
  }
  const std::vector<AnalysisReport>& reports() const { return reports_; }

  /// Analyzes any incidents still waiting for trailing telemetry (e.g. at
  /// the end of a capture when the stream stops).
  void flush_pending();

 private:
  struct PendingIncident {
    detect::AnomalyReport anomaly;
    std::size_t telemetry_snapshot = 0;  // SDL record count at flag time
    /// Failed LLM queries for this incident so far. Monotonic, so the
    /// defer-retry cycle always terminates.
    std::size_t llm_attempts = 0;
  };

  /// LLM queries per incident before it is dropped as unanalyzable.
  static constexpr std::size_t kMaxLlmAttempts = 3;

  /// Registry handles, bound lazily on first use ("llm.*").
  struct Metrics {
    obs::Counter* incidents_analyzed = nullptr;
    obs::Counter* contradictions = nullptr;
    obs::Counter* remediations_issued = nullptr;
    obs::Counter* deferrals = nullptr;
    obs::Counter* incidents_dropped = nullptr;
    bool bound = false;
  };

  Metrics& m() const;
  void handle_anomaly(const oran::RoutedMessage& message);
  void drain_ready_incidents();
  void analyze(PendingIncident incident);
  void maybe_remediate(const detect::AnomalyReport& anomaly,
                       AnalysisReport& report);

  AnalyzerConfig config_;
  std::shared_ptr<LlmClient> client_;
  std::vector<AnalysisReport> reports_;
  std::deque<PendingIncident> pending_;
  std::uint64_t next_incident_ = 1;
  mutable Metrics metrics_;
};

}  // namespace xsec::llm
