// Cellular-security knowledge base for the expert engine.
//
// Encodes the attack taxonomy of the paper (its five evaluated attacks plus
// the benign baseline) with the 3GPP-grounded facts needed to produce
// classification / explanation / attribution / remediation output — the
// four insight classes of §3.3. This is the domain knowledge a real
// deployment would retrieve from 3GPP specs via RAG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xsec::llm {

/// Evidence classes the analysis engine can extract from a telemetry
/// window. Each attack manifests as one primary signature.
enum class SignatureKind : std::uint8_t {
  kSignalingStorm = 0,         // BTS DoS: flood of incomplete RRC connections
  kTmsiReplay,                 // Blind DoS: victim S-TMSI replayed across UEs
  kPlaintextIdentityUplink,    // Uplink ID extraction: null-scheme SUCI in a
                               // standard-compliant registration
  kIdentityRequestOutOfOrder,  // Downlink ID extraction: IdentityRequest in
                               // place of AuthenticationRequest
  kNullCipherDowngrade,        // NEA0/NIA0 selected by SecurityModeCommand
};
inline constexpr std::size_t kSignatureCount = 5;

std::string to_string(SignatureKind kind);

struct AttackKnowledge {
  SignatureKind signature;
  std::string name;        // e.g. "BTS resource depletion DoS"
  std::string aka;         // paper/literature name + citation
  std::string category;    // "denial-of-service", "privacy", "downgrade"
  std::string attribution; // who is behind it (rogue UE / MiTM relay / ...)
  std::string explanation; // why the pattern is anomalous (spec-grounded)
  std::string implications;
  std::vector<std::string> remediations;
};

/// The full knowledge base, indexed by signature kind.
const std::vector<AttackKnowledge>& knowledge_base();
const AttackKnowledge& lookup(SignatureKind kind);

}  // namespace xsec::llm
