#include "llm/prompt.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace xsec::llm {

namespace vocab = mobiflow::vocab;

std::string render_record_line(const mobiflow::Record& record) {
  std::string out = "t=" + std::to_string(record.timestamp_us) + "us";
  out += " ue=" + std::to_string(record.ue_id);
  out += ' ';
  out += record.direction_name();
  out += ' ';
  out += record.protocol_name();
  out += ':';
  out += record.msg_name();
  char rnti_buf[16];
  std::snprintf(rnti_buf, sizeof(rnti_buf), "0x%04X", record.rnti);
  out += " rnti=";
  out += rnti_buf;
  if (record.s_tmsi != 0)
    out += " tmsi=" + std::to_string(record.s_tmsi);
  if (!record.suci.empty()) out += " suci=" + record.suci;
  if (!record.supi_plain.empty()) out += " supi=" + record.supi_plain;
  if (record.cipher_alg != vocab::CipherAlg::kNone) {
    out += " cipher=";
    out += record.cipher_name();
  }
  if (record.integrity_alg != vocab::IntegrityAlg::kNone) {
    out += " integrity=";
    out += record.integrity_name();
  }
  if (record.establishment_cause != vocab::EstablishmentCause::kNone) {
    out += " cause=";
    out += record.cause_name();
  }
  return out;
}

Result<mobiflow::Record> parse_record_line(const std::string& line) {
  mobiflow::Record record;
  bool have_msg = false;
  for (const std::string& token : split(trim(line), ' ')) {
    if (token.empty()) continue;
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      if (token == "UL" || token == "DL") {
        record.direction = token == "UL" ? vocab::Direction::kUl
                                         : vocab::Direction::kDl;
      } else if (auto colon = token.find(':');
                 colon != std::string::npos && !have_msg) {
        // Lenient on purpose: an LLM-mangled name degrades to the unknown
        // bucket instead of failing the whole line.
        record.protocol =
            vocab::protocol_or_unknown(token.substr(0, colon));
        record.msg = vocab::msg_or_unknown(token.substr(colon + 1));
        have_msg = true;
      }
      continue;
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "t") {
      record.timestamp_us = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "ue") {
      record.ue_id = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rnti") {
      record.rnti = static_cast<std::uint16_t>(
          std::strtoul(value.c_str(), nullptr, 16));
    } else if (key == "tmsi") {
      record.s_tmsi = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "suci") {
      record.suci = value;
    } else if (key == "supi") {
      record.supi_plain = value;
    } else if (key == "cipher") {
      record.cipher_alg = vocab::cipher_or_none(value);
    } else if (key == "integrity") {
      record.integrity_alg = vocab::integrity_or_none(value);
    } else if (key == "cause") {
      record.establishment_cause = vocab::cause_or_none(value);
    }
  }
  if (!have_msg)
    return Error::make("malformed", "no protocol:message token in line");
  return record;
}

std::string data_description() {
  return
      "Each line is one control-plane message observed at the RAN, with "
      "attributes:\n"
      "  t          microsecond timestamp of the transmission\n"
      "  ue         RAN-local UE context id (one per RRC connection)\n"
      "  UL/DL      uplink (device to network) or downlink direction\n"
      "  RRC:/NAS:  protocol and message name (TS 38.331 / TS 24.501)\n"
      "  rnti       Radio Network Temporary Identifier assigned by the gNB\n"
      "  tmsi       5G-S-TMSI temporary subscriber identity, if present\n"
      "  suci       concealed subscription identifier (scheme 0 = null "
      "scheme, i.e. NOT concealed)\n"
      "  supi       permanent subscriber identity IF OBSERVED IN PLAINTEXT\n"
      "  cipher     ciphering algorithm selected for the UE (NEA0 = null)\n"
      "  integrity  integrity algorithm selected for the UE (NIA0 = null)\n"
      "  cause      RRC establishment cause from the UE\n";
}

namespace {
std::string render_block(const mobiflow::Trace& trace) {
  std::string out;
  for (const auto& entry : trace.entries()) {
    out += render_record_line(entry.record);
    out += '\n';
  }
  return out;
}
}  // namespace

std::string PromptTemplate::build(const detect::AnomalyReport& report) const {
  std::string prompt = role;
  prompt +=
      " You have access to a cellular traffic sequence of attributes:\n";
  prompt += "<DATA_DESCRIPTIONS>\n" + data_description() +
            "</DATA_DESCRIPTIONS>\n";
  if (!report.context.empty()) {
    prompt += "Preceding context (for reference):\n<CONTEXT>\n";
    prompt += render_block(report.context);
    prompt += "</CONTEXT>\n";
  }
  prompt += "<DATA>\n" + render_block(report.window) + "</DATA>\n";
  prompt += task;
  prompt += '\n';
  return prompt;
}

std::string PromptTemplate::build(const mobiflow::Trace& trace) const {
  std::string prompt = role;
  prompt +=
      " You have access to a cellular traffic sequence of attributes:\n";
  prompt += "<DATA_DESCRIPTIONS>\n" + data_description() +
            "</DATA_DESCRIPTIONS>\n";
  prompt += "<DATA>\n" + render_block(trace) + "</DATA>\n";
  prompt += task;
  prompt += '\n';
  return prompt;
}

Result<mobiflow::Trace> extract_trace_from_prompt(const std::string& prompt) {
  mobiflow::Trace trace;
  auto harvest = [&trace, &prompt](const std::string& open,
                                   const std::string& close) -> Status {
    std::size_t begin = prompt.find(open);
    if (begin == std::string::npos) return Status::ok_status();
    begin += open.size();
    std::size_t end = prompt.find(close, begin);
    if (end == std::string::npos)
      return Error::make("malformed", "unterminated " + open + " block");
    for (const std::string& line :
         split(prompt.substr(begin, end - begin), '\n')) {
      if (trim(line).empty()) continue;
      auto record = parse_record_line(line);
      if (!record) return record.error();
      trace.add(std::move(record).value());
    }
    return Status::ok_status();
  };
  // Context lines first (chronological order), then the window.
  if (auto s = harvest("<CONTEXT>\n", "</CONTEXT>"); !s) return s.error();
  if (auto s = harvest("<DATA>\n", "</DATA>"); !s) return s.error();
  if (trace.empty())
    return Error::make("malformed", "no telemetry lines in prompt");
  return trace;
}

}  // namespace xsec::llm
