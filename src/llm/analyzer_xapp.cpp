#include "llm/analyzer_xapp.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "llm/retrieval.hpp"
#include "oran/e2sm.hpp"

namespace xsec::llm {

Bytes IncidentVerdict::serialize() const {
  ByteWriter w;
  w.u64(incident_id);
  w.u64(node_id);
  w.u64(source_ue);
  w.str(detector);
  w.f64(score);
  w.f64(threshold);
  w.boolean(llm_agrees);
  w.u32(static_cast<std::uint32_t>(candidate_attacks.size()));
  for (const std::string& attack : candidate_attacks) w.str(attack);
  w.u32(static_cast<std::uint32_t>(suspect_tmsis.size()));
  for (std::uint64_t tmsi : suspect_tmsis) w.u64(tmsi);
  w.i64(flagged_at_us);
  return w.take();
}

Result<IncidentVerdict> IncidentVerdict::deserialize(const Bytes& wire) {
  ByteReader r(wire);
  IncidentVerdict v;
  auto incident_id = r.u64();
  if (!incident_id) return incident_id.error();
  v.incident_id = incident_id.value();
  auto node_id = r.u64();
  if (!node_id) return node_id.error();
  v.node_id = node_id.value();
  auto source_ue = r.u64();
  if (!source_ue) return source_ue.error();
  v.source_ue = source_ue.value();
  auto detector = r.str();
  if (!detector) return detector.error();
  v.detector = detector.value();
  auto score = r.f64();
  if (!score) return score.error();
  v.score = score.value();
  auto threshold = r.f64();
  if (!threshold) return threshold.error();
  v.threshold = threshold.value();
  auto agrees = r.boolean();
  if (!agrees) return agrees.error();
  v.llm_agrees = agrees.value();
  auto n_attacks = r.u32();
  if (!n_attacks) return n_attacks.error();
  if (n_attacks.value() > r.remaining())
    return Error::make("overflow", "attack count exceeds payload");
  for (std::uint32_t i = 0; i < n_attacks.value(); ++i) {
    auto attack = r.str();
    if (!attack) return attack.error();
    v.candidate_attacks.push_back(std::move(attack).value());
  }
  auto n_tmsis = r.u32();
  if (!n_tmsis) return n_tmsis.error();
  if (n_tmsis.value() > r.remaining())
    return Error::make("overflow", "tmsi count exceeds payload");
  for (std::uint32_t i = 0; i < n_tmsis.value(); ++i) {
    auto tmsi = r.u64();
    if (!tmsi) return tmsi.error();
    v.suspect_tmsis.push_back(tmsi.value());
  }
  auto flagged = r.i64();
  if (!flagged) return flagged.error();
  v.flagged_at_us = flagged.value();
  if (!r.exhausted())
    return Error::make("trailing", "trailing bytes after incident verdict");
  return v;
}

std::string AnalysisReport::to_text() const {
  std::string out = "=== Incident #" + std::to_string(incident_id) + " ===\n";
  out += "Flagged by: " + detector +
         " (score=" + format_fixed(anomaly_score, 6) + ")\n";
  out += "Analyzed by: " + model + "\n";
  out += "Cross-comparison: " +
         std::string(llm_agrees ? "LLM confirms anomaly"
                                : "CONTRADICTION - LLM says benign, "
                                  "escalated for human review") +
         "\n";
  if (!candidate_attacks.empty())
    out += "Candidate attacks: " + join(candidate_attacks, "; ") + "\n";
  if (remediation_issued) out += "Remediation: RIC Control action issued\n";
  out += response_text;
  return out;
}

LlmAnalyzerXapp::LlmAnalyzerXapp(AnalyzerConfig config,
                                 std::shared_ptr<LlmClient> client)
    : oran::XApp("llm-analyzer"),
      config_(std::move(config)),
      client_(std::move(client)) {}

LlmAnalyzerXapp::Metrics& LlmAnalyzerXapp::m() const {
  if (!metrics_.bound) {
    obs::MetricsRegistry& r = obs().metrics;
    metrics_.incidents_analyzed = &r.counter("llm.incidents_analyzed");
    metrics_.contradictions = &r.counter("llm.contradictions");
    metrics_.remediations_issued = &r.counter("llm.remediations_issued");
    metrics_.deferrals = &r.counter("llm.deferrals");
    metrics_.incidents_dropped = &r.counter("llm.incidents_dropped");
    metrics_.bound = true;
  }
  return metrics_;
}

void LlmAnalyzerXapp::on_start() {
  router().subscribe(oran::kMtAnomalyWindow,
                     [this](const oran::RoutedMessage& message) {
                       handle_anomaly(message);
                     });
  // Trailing-telemetry watch: deferred incidents become analyzable as more
  // records stream into the SDL.
  sdl().watch(config_.telemetry_namespace,
              [this](const std::string&, const std::string&) {
                drain_ready_incidents();
              });
}

oran::PolicyStatus LlmAnalyzerXapp::on_policy(const oran::A1Policy& policy) {
  if (policy.policy_type != oran::kPolicyResponseControl)
    return oran::PolicyStatus::kUnsupported;
  config_.auto_remediate =
      policy.get_bool("auto_remediate", config_.auto_remediate);
  config_.use_rag = policy.get_bool("use_rag", config_.use_rag);
  return oran::PolicyStatus::kEnforced;
}

void LlmAnalyzerXapp::handle_anomaly(const oran::RoutedMessage& message) {
  auto anomaly = detect::AnomalyReport::deserialize(message.payload);
  if (!anomaly) {
    XSEC_LOG_WARN("llm-analyzer", "undecodable anomaly report: ",
                  anomaly.error().message);
    return;
  }

  std::size_t stream_size = sdl().size(config_.telemetry_namespace);
  if (config_.defer_records == 0 || stream_size == 0) {
    // No telemetry stream to wait on (or deferral disabled).
    analyze({std::move(anomaly).value(), stream_size});
    return;
  }
  pending_.push_back({std::move(anomaly).value(), stream_size});
  drain_ready_incidents();
}

void LlmAnalyzerXapp::drain_ready_incidents() {
  std::size_t stream_size = sdl().size(config_.telemetry_namespace);
  while (!pending_.empty() &&
         stream_size >= pending_.front().telemetry_snapshot +
                            config_.defer_records) {
    PendingIncident incident = std::move(pending_.front());
    pending_.pop_front();
    // Attach the trailing records to the analyzed window so evidence that
    // completed after the flag is visible.
    auto keys = sdl().keys(config_.telemetry_namespace);
    for (std::size_t i = incident.telemetry_snapshot; i < keys.size(); ++i) {
      auto raw = sdl().get(config_.telemetry_namespace, keys[i]);
      if (!raw) continue;
      auto record = mobiflow::Record::from_kv_bytes(*raw);
      if (record) incident.anomaly.window.add(std::move(record).value());
    }
    analyze(std::move(incident));
  }
}

void LlmAnalyzerXapp::flush_pending() {
  while (!pending_.empty()) {
    PendingIncident incident = std::move(pending_.front());
    pending_.pop_front();
    analyze(std::move(incident));
  }
}

void LlmAnalyzerXapp::analyze(PendingIncident incident) {
  const detect::AnomalyReport& anomaly = incident.anomaly;
  LlmRequest request;
  request.model = config_.model;
  request.prompt = config_.prompt_template.build(anomaly);
  if (config_.use_rag) {
    static const SpecRetriever retriever;
    request.prompt = retriever.augment_prompt(request.prompt);
  }
  auto response = client_->query(request);
  if (!response) {
    // LLM outage (timeout, 5xx, open circuit breaker): the incident goes
    // back on the pending queue instead of being silently lost, with a
    // fresh telemetry snapshot so it is retried once the stream moves on.
    ++incident.llm_attempts;
    if (incident.llm_attempts >= kMaxLlmAttempts) {
      m().incidents_dropped->inc();
      XSEC_LOG_WARN("llm-analyzer", "incident dropped after ",
                    incident.llm_attempts, " failed LLM queries: ",
                    response.error().message);
      return;
    }
    m().deferrals->inc();
    XSEC_LOG_WARN("llm-analyzer", "LLM query failed (",
                  response.error().message, "); incident deferred (attempt ",
                  incident.llm_attempts, "/", kMaxLlmAttempts, ")");
    incident.telemetry_snapshot = sdl().size(config_.telemetry_namespace);
    pending_.push_back(std::move(incident));
    return;
  }

  AnalysisReport report;
  report.incident_id = next_incident_++;
  report.detector = anomaly.detector;
  report.anomaly_score = anomaly.score;
  report.model = response.value().model;
  report.llm_agrees = response.value().verdict_anomalous;
  report.response_text = response.value().text;
  report.candidate_attacks = response.value().attacks;
  m().incidents_analyzed->inc();
  std::int64_t newest_us = 0;
  for (const auto& entry : anomaly.window.entries())
    newest_us = std::max(newest_us, entry.record.timestamp_us);
  // Analysis latency span: from the newest evidence record to now. Only
  // meaningful when the platform clock drives the tracer (pipeline runs).
  obs::Tracer& tracer = obs().tracer;
  if (tracer.has_clock()) {
    tracer.record("llm.analyze", report.incident_id, /*parent_id=*/0,
                  SimTime{newest_us}, tracer.now());
  }

  if (!report.llm_agrees) {
    // Contradiction between the anomaly detector and the LLM: per the
    // paper, human supervision is required.
    m().contradictions->inc();
    oran::RoutedMessage review;
    review.mtype = oran::kMtHumanReview;
    review.source = name();
    std::string text = report.to_text();
    review.payload = Bytes(text.begin(), text.end());
    router().publish(review);
  } else if (config_.auto_remediate) {
    maybe_remediate(anomaly, report);
  }

  sdl().set_str(config_.sdl_namespace,
                oran::Sdl::seq_key(report.incident_id), report.to_text());
  oran::RoutedMessage out;
  out.mtype = oran::kMtAnalysisReport;
  out.source = name();
  std::string text = report.to_text();
  out.payload = Bytes(text.begin(), text.end());
  router().publish(out);

  // Machine-readable verdict for the mitigation loop — published for EVERY
  // analyzed incident, agree or not: a benign verdict is the evidence that
  // rolls an over-eager action back.
  IncidentVerdict verdict;
  verdict.incident_id = report.incident_id;
  verdict.node_id = anomaly.node_id;
  verdict.source_ue = anomaly.source_ue;
  verdict.detector = report.detector;
  verdict.score = report.anomaly_score;
  verdict.threshold = anomaly.threshold;
  verdict.llm_agrees = report.llm_agrees;
  verdict.candidate_attacks = report.candidate_attacks;
  verdict.flagged_at_us = newest_us;
  std::map<std::uint64_t, std::set<std::uint64_t>> tmsi_owners;
  for (const auto& entry : anomaly.window.entries())
    if (entry.record.s_tmsi != 0)
      tmsi_owners[entry.record.s_tmsi].insert(entry.record.ue_id);
  for (const auto& [tmsi, ues] : tmsi_owners)
    if (ues.size() >= 2) verdict.suspect_tmsis.push_back(tmsi);
  oran::RoutedMessage verdict_msg;
  verdict_msg.mtype = oran::kMtIncidentVerdict;
  verdict_msg.source = name();
  verdict_msg.payload = verdict.serialize();
  router().publish(verdict_msg);

  reports_.push_back(std::move(report));
}

void LlmAnalyzerXapp::maybe_remediate(const detect::AnomalyReport& anomaly,
                                      AnalysisReport& report) {
  if (anomaly.node_id == 0) return;
  bool dos_class = false;
  bool replay_class = false;
  for (const std::string& attack : report.candidate_attacks) {
    std::string lower = to_lower(attack);
    if (contains(lower, "replay")) replay_class = true;
    if (contains(lower, "dos") || contains(lower, "signaling storm") ||
        contains(lower, "depletion"))
      dos_class = true;
  }

  if (replay_class) {
    // Blind DoS: block the replayed S-TMSI at the DU. The identifier is
    // the one presented from multiple UE contexts in the flagged window.
    std::map<std::uint64_t, std::set<std::uint64_t>> owners;
    for (const auto& entry : anomaly.window.entries())
      if (entry.record.s_tmsi != 0)
        owners[entry.record.s_tmsi].insert(entry.record.ue_id);
    for (const auto& [tmsi, ues] : owners) {
      if (ues.size() < 2) continue;
      mobiflow::ControlCommand cmd;
      cmd.action = mobiflow::ControlCommand::Action::kBlockTmsi;
      cmd.s_tmsi = tmsi;
      ric().send_control(this, anomaly.node_id,
                         oran::e2sm::kMobiFlowFunctionId, {},
                         mobiflow::encode_control(cmd));
      m().remediations_issued->inc();
      report.remediation_issued = true;
    }
  }
  if (!dos_class) return;

  // For half-open connection floods, command the RAN to release contexts
  // stalled pre-security (the gNB holds the authoritative state, so
  // bystanders mid-attach are spared — they complete within a few ms).
  // This is the knowledge base's first remediation for the storm
  // signature, realized through the E2 control primitive.
  mobiflow::ControlCommand cmd;
  cmd.action = mobiflow::ControlCommand::Action::kReleaseStale;
  cmd.stale_age_ms = 50;
  ric().send_control(this, anomaly.node_id, oran::e2sm::kMobiFlowFunctionId,
                     {}, mobiflow::encode_control(cmd));
  m().remediations_issued->inc();
  report.remediation_issued = true;
}

}  // namespace xsec::llm
