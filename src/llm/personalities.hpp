// Simulated model personalities calibrated to the paper's Table 3.
//
// The paper evaluates five production LLMs zero-shot and reports, per
// attack, which models produced a correct verdict + explanation. Offline we
// cannot query those services, so each personality runs the deterministic
// expert engine with a masked evidence set: the mask encodes which evidence
// classes that model integrated correctly in the paper's experiments (e.g.
// most models missed the standard-compliant uplink identity extraction).
// This reproduces the *shape* of Table 3; it is a documented simulation,
// not a claim about the real services.
#pragma once

#include <string>
#include <vector>

#include "llm/knowledge.hpp"

namespace xsec::llm {

struct ModelPersonality {
  std::string name;
  std::string vendor;
  /// Evidence kinds this model reliably recognizes (Table 3 calibration).
  std::vector<SignatureKind> competence;
  /// Cosmetic response framing.
  std::string style_prefix;
};

/// The five baseline models of Table 3, in the paper's column order.
const std::vector<ModelPersonality>& baseline_models();
const ModelPersonality* find_model(const std::string& name);

/// A hypothetical full-competence analyst (upper bound; empty mask).
ModelPersonality oracle_model();

}  // namespace xsec::llm
