// LLM client abstraction.
//
// The xApp reaches models "through RESTful web APIs from either a
// pre-trained LLM or a locally fine-tuned model" (paper §3.3). Two
// implementations:
//   - SimLlmClient: the offline expert simulation. Consumes ONLY the
//     prompt text (it re-parses the telemetry lines), runs the expert
//     engine under the requested model's competence mask, and renders an
//     analyst-style response. Deterministic.
//   - RestLlmClient: the production path. Builds the JSON chat request a
//     real deployment would POST; the HTTP transport is injected so tests
//     (and air-gapped deployments) supply their own.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "llm/expert.hpp"
#include "llm/personalities.hpp"
#include "llm/prompt.hpp"

namespace xsec::llm {

struct LlmRequest {
  std::string model;  // personality / deployment model name
  std::string prompt;
};

struct LlmResponse {
  std::string model;
  std::string text;
  /// Parsed verdict: did the model call the sequence anomalous?
  bool verdict_anomalous = false;
  /// Attack names the model proposed (possibly empty).
  std::vector<std::string> attacks;
};

/// Extracts the verdict and attack list from analyst response text (keys
/// on the "Verdict:" line and the numbered candidate list; tolerant of
/// free-form text that merely contains "anomalous"/"benign").
LlmResponse parse_response_text(const std::string& model,
                                const std::string& text);

class LlmClient {
 public:
  virtual ~LlmClient() = default;
  virtual Result<LlmResponse> query(const LlmRequest& request) = 0;
};

class SimLlmClient : public LlmClient {
 public:
  Result<LlmResponse> query(const LlmRequest& request) override;

  std::size_t queries_served() const { return queries_; }

 private:
  ExpertEngine engine_;
  std::size_t queries_ = 0;
};

/// Retry / circuit-breaker settings for ResilientLlmClient. "Time" here is
/// counted in queries, not wall-clock: the analyzer is driven by the
/// discrete-event pipeline, so a cooldown of N means the breaker rejects N
/// queries before letting a probe through.
struct ResilienceConfig {
  /// Attempts per query (first try + retries).
  std::size_t max_attempts = 3;
  /// Consecutive failed queries (all retries exhausted) that open the
  /// breaker.
  std::size_t breaker_threshold = 5;
  /// Queries rejected while open before a half-open probe is allowed.
  std::size_t breaker_cooldown = 8;
};

/// Decorator adding retry-with-budget and a circuit breaker around any
/// LlmClient. A flaky backend (timeouts, 5xx — modeled as error Results
/// from the inner client) is retried up to max_attempts; sustained failure
/// opens the breaker so the analyzer fails fast and defers incidents to
/// its pending queue instead of hammering a dead endpoint.
class ResilientLlmClient : public LlmClient {
 public:
  explicit ResilientLlmClient(std::shared_ptr<LlmClient> inner,
                              ResilienceConfig config = {});

  Result<LlmResponse> query(const LlmRequest& request) override;

  bool breaker_open() const { return open_; }
  /// Extra attempts made after a first-try failure.
  std::size_t retries() const { return retries_; }
  /// Times the breaker transitioned to open (including re-opens after a
  /// failed half-open probe).
  std::size_t breaker_trips() const { return breaker_trips_; }
  /// Queries that exhausted every attempt.
  std::size_t failed_queries() const { return failed_queries_; }
  /// Queries rejected outright while the breaker was open.
  std::size_t queries_rejected() const { return queries_rejected_; }

 private:
  std::shared_ptr<LlmClient> inner_;
  ResilienceConfig config_;
  bool open_ = false;
  std::size_t cooldown_remaining_ = 0;
  std::size_t consecutive_failures_ = 0;
  std::size_t retries_ = 0;
  std::size_t breaker_trips_ = 0;
  std::size_t failed_queries_ = 0;
  std::size_t queries_rejected_ = 0;
};

/// Minimal HTTP request description handed to the injected transport.
struct HttpRequest {
  std::string method = "POST";
  std::string url;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

class RestLlmClient : public LlmClient {
 public:
  /// Transport returns the raw response body (JSON) or an error.
  using Transport = std::function<Result<std::string>(const HttpRequest&)>;

  RestLlmClient(std::string endpoint_url, std::string api_key,
                Transport transport);

  Result<LlmResponse> query(const LlmRequest& request) override;

  /// Exposed for tests: the JSON body built for a request.
  std::string build_body(const LlmRequest& request) const;

 private:
  std::string endpoint_url_;
  std::string api_key_;
  Transport transport_;
};

/// JSON string escaping / extraction helpers (shared with tests).
std::string json_escape(const std::string& text);
/// Extracts the string value of the first occurrence of `"key":"..."`,
/// un-escaping it. Returns error if absent.
Result<std::string> json_extract_string(const std::string& json,
                                        const std::string& key);

}  // namespace xsec::llm
