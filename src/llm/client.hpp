// LLM client abstraction.
//
// The xApp reaches models "through RESTful web APIs from either a
// pre-trained LLM or a locally fine-tuned model" (paper §3.3). Two
// implementations:
//   - SimLlmClient: the offline expert simulation. Consumes ONLY the
//     prompt text (it re-parses the telemetry lines), runs the expert
//     engine under the requested model's competence mask, and renders an
//     analyst-style response. Deterministic.
//   - RestLlmClient: the production path. Builds the JSON chat request a
//     real deployment would POST; the HTTP transport is injected so tests
//     (and air-gapped deployments) supply their own.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "llm/expert.hpp"
#include "obs/trace.hpp"
#include "llm/personalities.hpp"
#include "llm/prompt.hpp"

namespace xsec::llm {

struct LlmRequest {
  std::string model;  // personality / deployment model name
  std::string prompt;
};

struct LlmResponse {
  std::string model;
  std::string text;
  /// Parsed verdict: did the model call the sequence anomalous?
  bool verdict_anomalous = false;
  /// Attack names the model proposed (possibly empty).
  std::vector<std::string> attacks;
};

/// Extracts the verdict and attack list from analyst response text (keys
/// on the "Verdict:" line and the numbered candidate list; tolerant of
/// free-form text that merely contains "anomalous"/"benign").
LlmResponse parse_response_text(const std::string& model,
                                const std::string& text);

class LlmClient {
 public:
  virtual ~LlmClient() = default;
  virtual Result<LlmResponse> query(const LlmRequest& request) = 0;
};

class SimLlmClient : public LlmClient {
 public:
  Result<LlmResponse> query(const LlmRequest& request) override;

  std::size_t queries_served() const { return queries_; }

 private:
  ExpertEngine engine_;
  std::size_t queries_ = 0;
};

/// Retry / circuit-breaker settings for ResilientLlmClient.
struct ResilienceConfig {
  /// Attempts per query (first try + retries).
  std::size_t max_attempts = 3;
  /// Consecutive failed queries (all retries exhausted) that open the
  /// breaker.
  std::size_t breaker_threshold = 5;
  /// Time the breaker stays open before a half-open probe is allowed.
  /// Measured on the injected clock (the pipeline wires the sim clock, so
  /// the half-open schedule is deterministic under any seed); without a
  /// clock the client falls back to an internal query-tick pseudo-clock
  /// advancing 1 ms per query.
  SimDuration breaker_cooldown = SimDuration::from_ms(500);
};

/// Decorator adding retry-with-budget and a circuit breaker around any
/// LlmClient. A flaky backend (timeouts, 5xx — modeled as error Results
/// from the inner client) is retried up to max_attempts; sustained failure
/// opens the breaker so the analyzer fails fast and defers incidents to
/// its pending queue instead of hammering a dead endpoint.
class ResilientLlmClient : public LlmClient {
 public:
  explicit ResilientLlmClient(std::shared_ptr<LlmClient> inner,
                              ResilienceConfig config = {});

  /// Drives the breaker's cooldown schedule (the pipeline wires the sim
  /// clock). Without one, an internal pseudo-clock ticks 1 ms per query.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  /// Rebinds the counters into a shared registry (the pipeline's). The
  /// client starts with a private bundle so it works standalone.
  void set_observability(obs::Observability* observability);

  Result<LlmResponse> query(const LlmRequest& request) override;

  bool breaker_open() const { return open_; }
  /// When the breaker admits the next half-open probe (meaningful only
  /// while open).
  SimTime open_until() const { return open_until_; }
  /// Extra attempts made after a first-try failure.
  std::size_t retries() const { return retries_->value(); }
  /// Times the breaker transitioned to open (including re-opens after a
  /// failed half-open probe).
  std::size_t breaker_trips() const { return breaker_trips_->value(); }
  /// Queries that exhausted every attempt.
  std::size_t failed_queries() const { return failed_queries_->value(); }
  /// Queries rejected outright while the breaker was open.
  std::size_t queries_rejected() const { return queries_rejected_->value(); }

 private:
  SimTime now();
  void bind(obs::MetricsRegistry& registry);

  std::shared_ptr<LlmClient> inner_;
  ResilienceConfig config_;
  std::function<SimTime()> clock_;
  SimTime pseudo_now_{0};
  bool open_ = false;
  SimTime open_until_{0};
  std::size_t consecutive_failures_ = 0;
  std::unique_ptr<obs::Observability> own_obs_;
  obs::Counter* retries_ = nullptr;
  obs::Counter* breaker_trips_ = nullptr;
  obs::Counter* failed_queries_ = nullptr;
  obs::Counter* queries_rejected_ = nullptr;
  obs::Gauge* breaker_open_ = nullptr;
};

/// Minimal HTTP request description handed to the injected transport.
struct HttpRequest {
  std::string method = "POST";
  std::string url;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

class RestLlmClient : public LlmClient {
 public:
  /// Transport returns the raw response body (JSON) or an error.
  using Transport = std::function<Result<std::string>(const HttpRequest&)>;

  RestLlmClient(std::string endpoint_url, std::string api_key,
                Transport transport);

  Result<LlmResponse> query(const LlmRequest& request) override;

  /// Exposed for tests: the JSON body built for a request.
  std::string build_body(const LlmRequest& request) const;

 private:
  std::string endpoint_url_;
  std::string api_key_;
  Transport transport_;
};

/// JSON string escaping / extraction helpers (shared with tests).
std::string json_escape(const std::string& text);
/// Extracts the string value of the first occurrence of `"key":"..."`,
/// un-escaping it. Returns error if absent.
Result<std::string> json_extract_string(const std::string& json,
                                        const std::string& key);

}  // namespace xsec::llm
