// LLM client abstraction.
//
// The xApp reaches models "through RESTful web APIs from either a
// pre-trained LLM or a locally fine-tuned model" (paper §3.3). Two
// implementations:
//   - SimLlmClient: the offline expert simulation. Consumes ONLY the
//     prompt text (it re-parses the telemetry lines), runs the expert
//     engine under the requested model's competence mask, and renders an
//     analyst-style response. Deterministic.
//   - RestLlmClient: the production path. Builds the JSON chat request a
//     real deployment would POST; the HTTP transport is injected so tests
//     (and air-gapped deployments) supply their own.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "llm/expert.hpp"
#include "llm/personalities.hpp"
#include "llm/prompt.hpp"

namespace xsec::llm {

struct LlmRequest {
  std::string model;  // personality / deployment model name
  std::string prompt;
};

struct LlmResponse {
  std::string model;
  std::string text;
  /// Parsed verdict: did the model call the sequence anomalous?
  bool verdict_anomalous = false;
  /// Attack names the model proposed (possibly empty).
  std::vector<std::string> attacks;
};

/// Extracts the verdict and attack list from analyst response text (keys
/// on the "Verdict:" line and the numbered candidate list; tolerant of
/// free-form text that merely contains "anomalous"/"benign").
LlmResponse parse_response_text(const std::string& model,
                                const std::string& text);

class LlmClient {
 public:
  virtual ~LlmClient() = default;
  virtual Result<LlmResponse> query(const LlmRequest& request) = 0;
};

class SimLlmClient : public LlmClient {
 public:
  Result<LlmResponse> query(const LlmRequest& request) override;

  std::size_t queries_served() const { return queries_; }

 private:
  ExpertEngine engine_;
  std::size_t queries_ = 0;
};

/// Minimal HTTP request description handed to the injected transport.
struct HttpRequest {
  std::string method = "POST";
  std::string url;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

class RestLlmClient : public LlmClient {
 public:
  /// Transport returns the raw response body (JSON) or an error.
  using Transport = std::function<Result<std::string>(const HttpRequest&)>;

  RestLlmClient(std::string endpoint_url, std::string api_key,
                Transport transport);

  Result<LlmResponse> query(const LlmRequest& request) override;

  /// Exposed for tests: the JSON body built for a request.
  std::string build_body(const LlmRequest& request) const;

 private:
  std::string endpoint_url_;
  std::string api_key_;
  Transport transport_;
};

/// JSON string escaping / extraction helpers (shared with tests).
std::string json_escape(const std::string& text);
/// Extracts the string value of the first occurrence of `"key":"..."`,
/// un-escaping it. Returns error if absent.
Result<std::string> json_extract_string(const std::string& json,
                                        const std::string& key);

}  // namespace xsec::llm
