#include "llm/client.hpp"

#include "common/strings.hpp"

namespace xsec::llm {

LlmResponse parse_response_text(const std::string& model,
                                const std::string& text) {
  LlmResponse response;
  response.model = model;
  response.text = text;

  std::string lower = to_lower(text);
  // A structured "Verdict:" line wins; otherwise fall back to keyword scan.
  std::size_t verdict_pos = lower.find("verdict:");
  if (verdict_pos != std::string::npos) {
    std::size_t line_end = lower.find('\n', verdict_pos);
    std::string line = lower.substr(
        verdict_pos, line_end == std::string::npos ? std::string::npos
                                                   : line_end - verdict_pos);
    response.verdict_anomalous = contains(line, "anomal");
  } else {
    bool says_anomalous = contains(lower, "anomalous") ||
                          contains(lower, "likely an attack");
    bool says_benign = contains(lower, "benign") ||
                       contains(lower, "normal traffic");
    response.verdict_anomalous = says_anomalous && !says_benign;
    if (says_anomalous && says_benign) {
      // Both present: take the first mention as the conclusion.
      response.verdict_anomalous =
          lower.find("anomal") < lower.find("benign");
    }
  }

  // Candidate attacks: numbered lines "  1. <name> (...".
  for (const std::string& line : split(text, '\n')) {
    std::string trimmed = trim(line);
    if (trimmed.size() > 3 && trimmed[0] >= '1' && trimmed[0] <= '9' &&
        trimmed[1] == '.' && trimmed[2] == ' ') {
      std::string name = trimmed.substr(3);
      std::size_t paren = name.find(" (");
      if (paren != std::string::npos) name = name.substr(0, paren);
      response.attacks.push_back(trim(name));
    }
  }
  return response;
}

Result<LlmResponse> SimLlmClient::query(const LlmRequest& request) {
  ++queries_;
  auto trace = extract_trace_from_prompt(request.prompt);
  if (!trace)
    return Error::make("bad-prompt",
                       "cannot parse telemetry from prompt: " +
                           trace.error().message);

  std::vector<SignatureKind> mask;
  std::string style;
  if (const ModelPersonality* personality = find_model(request.model)) {
    mask = personality->competence;
    style = personality->style_prefix;
  }
  // Unknown model names (incl. "oracle") analyze at full competence.

  ExpertEngine engine;
  Analysis analysis = engine.analyze(trace.value(), mask);
  return parse_response_text(request.model, style + analysis.narrative);
}

ResilientLlmClient::ResilientLlmClient(std::shared_ptr<LlmClient> inner,
                                       ResilienceConfig config)
    : inner_(std::move(inner)), config_(config) {
  own_obs_ = std::make_unique<obs::Observability>();
  bind(own_obs_->metrics);
}

void ResilientLlmClient::bind(obs::MetricsRegistry& registry) {
  retries_ = &registry.counter("llm.retries");
  breaker_trips_ = &registry.counter("llm.breaker_trips");
  failed_queries_ = &registry.counter("llm.failed_queries");
  queries_rejected_ = &registry.counter("llm.queries_rejected");
  breaker_open_ = &registry.gauge("llm.breaker_open");
}

void ResilientLlmClient::set_observability(obs::Observability* observability) {
  if (!observability) return;
  bind(observability->metrics);
  breaker_open_->set(open_ ? 1.0 : 0.0);
}

SimTime ResilientLlmClient::now() {
  if (clock_) return clock_();
  return pseudo_now_;
}

Result<LlmResponse> ResilientLlmClient::query(const LlmRequest& request) {
  // Query-tick pseudo-clock fallback: keeps the breaker schedule
  // deterministic when no sim clock is injected (standalone tests).
  if (!clock_) pseudo_now_ = pseudo_now_ + SimDuration::from_ms(1);

  if (open_) {
    if (now().us < open_until_.us) {
      queries_rejected_->inc();
      return Error::make("breaker-open",
                         "LLM circuit breaker open; query rejected");
    }
    // Cooldown elapsed: let this query through as the half-open probe.
  }

  Error last = Error::make("llm", "no attempts made");
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) retries_->inc();
    auto response = inner_->query(request);
    if (response) {
      consecutive_failures_ = 0;
      open_ = false;
      breaker_open_->set(0.0);
      return response;
    }
    last = response.error();
  }

  failed_queries_->inc();
  ++consecutive_failures_;
  if (open_ || consecutive_failures_ >= config_.breaker_threshold) {
    // Either the half-open probe failed or the failure run crossed the
    // threshold: (re-)open and start a fresh cooldown.
    open_ = true;
    open_until_ = now() + config_.breaker_cooldown;
    breaker_trips_->inc();
    breaker_open_->set(1.0);
  }
  return last;
}

RestLlmClient::RestLlmClient(std::string endpoint_url, std::string api_key,
                             Transport transport)
    : endpoint_url_(std::move(endpoint_url)),
      api_key_(std::move(api_key)),
      transport_(std::move(transport)) {}

std::string RestLlmClient::build_body(const LlmRequest& request) const {
  return std::string("{\"model\":\"") + json_escape(request.model) +
         "\",\"messages\":[{\"role\":\"user\",\"content\":\"" +
         json_escape(request.prompt) + "\"}]}";
}

Result<LlmResponse> RestLlmClient::query(const LlmRequest& request) {
  if (!transport_)
    return Error::make("transport", "no HTTP transport configured");
  HttpRequest http;
  http.url = endpoint_url_;
  http.headers = {{"Content-Type", "application/json"},
                  {"Authorization", "Bearer " + api_key_}};
  http.body = build_body(request);
  auto body = transport_(http);
  if (!body) return body.error();
  auto content = json_extract_string(body.value(), "content");
  if (!content)
    return Error::make("bad-response",
                       "no content field in LLM response body");
  return parse_response_text(request.model, content.value());
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 16);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<std::string> json_extract_string(const std::string& json,
                                        const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  std::size_t start = json.find(needle);
  if (start == std::string::npos)
    return Error::make("missing", "key not found: " + key);
  start += needle.size();
  std::string out;
  for (std::size_t i = start; i < json.size(); ++i) {
    char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      char next = json[++i];
      switch (next) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'u':
          if (i + 4 < json.size()) {
            out += static_cast<char>(
                std::strtoul(json.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += next;
      }
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return Error::make("malformed", "unterminated JSON string");
}

}  // namespace xsec::llm
