// Prompt construction for LLM-based expert referencing (paper Figure 5).
//
// Builds the zero-shot analyst prompt: role, data description, the
// telemetry window rendered as text, and the task instruction asking for a
// benign/anomalous verdict, explanation, and top-3 candidate attacks.
// Also provides the inverse (parsing rendered telemetry lines back into
// records) so the simulated LLM genuinely consumes only the prompt text.
#pragma once

#include <string>

#include "common/result.hpp"
#include "detect/mobiwatch.hpp"
#include "mobiflow/record.hpp"
#include "mobiflow/trace.hpp"

namespace xsec::llm {

/// One telemetry record rendered as a prompt line, e.g.
/// "t=1234us ue=3 UL RRC:RRCSetupRequest rnti=0x5F1A cause=mo-Signalling".
std::string render_record_line(const mobiflow::Record& record);
Result<mobiflow::Record> parse_record_line(const std::string& line);

/// The <DATA_DESCRIPTIONS> block: field-by-field schema explanation.
std::string data_description();

struct PromptTemplate {
  std::string role =
      "You are an AI security analyst tasked with identifying potential "
      "attacks within a 5G network.";
  std::string task =
      "Determine whether this sequence is anomalous or benign and explain "
      "why. Next, if the sequence constitutes attacks, provide the top 3 "
      "most possible attacks, and describe the implications.";

  /// Renders the full prompt for an anomaly report (window + context).
  std::string build(const detect::AnomalyReport& report) const;
  /// Renders the full prompt for a bare trace (used for the benign rows of
  /// Table 3, which are fed to the LLM without a MobiWatch flag).
  std::string build(const mobiflow::Trace& trace) const;
};

/// Extracts the telemetry lines between the <DATA> ... </DATA> markers of a
/// built prompt and parses them back into records (in order).
Result<mobiflow::Trace> extract_trace_from_prompt(const std::string& prompt);

}  // namespace xsec::llm
