#include "llm/personalities.hpp"

namespace xsec::llm {

const std::vector<ModelPersonality>& baseline_models() {
  using SK = SignatureKind;
  static const std::vector<ModelPersonality> models = {
      // Table 3 row-by-row calibration:
      //   BTS DoS:        GPT ✓  Gemini ✓  Copilot ✓  Llama ✗  Claude ✗
      //   Blind DoS:      GPT ✓  Gemini ✗  Copilot ✗  Llama ✓  Claude ✗
      //   Uplink ID:      GPT ✗  Gemini ✗  Copilot ✗  Llama ✗  Claude ✓
      //   Downlink ID:    GPT ✓  Gemini ✓  Copilot ✗  Llama ✓  Claude ✓
      //   Null cipher:    GPT ✓  Gemini ✓  Copilot ✗  Llama ✓  Claude ✓
      {"ChatGPT-4o",
       "OpenAI",
       {SK::kSignalingStorm, SK::kTmsiReplay, SK::kIdentityRequestOutOfOrder,
        SK::kNullCipherDowngrade},
       "Based on the provided cellular traffic attributes, "},
      {"Gemini",
       "Google",
       {SK::kSignalingStorm, SK::kIdentityRequestOutOfOrder,
        SK::kNullCipherDowngrade},
       "Here's an analysis of the provided 5G trace. "},
      {"Copilot",
       "Microsoft",
       {SK::kSignalingStorm},
       "I've reviewed the network sequence you shared. "},
      {"Llama3",
       "Meta",
       {SK::kTmsiReplay, SK::kIdentityRequestOutOfOrder,
        SK::kNullCipherDowngrade},
       "Analyzing the message sequence: "},
      {"Claude 3 Sonnet",
       "Anthropic",
       {SK::kPlaintextIdentityUplink, SK::kIdentityRequestOutOfOrder,
        SK::kNullCipherDowngrade},
       "Let me examine this cellular control-plane trace carefully. "},
  };
  return models;
}

const ModelPersonality* find_model(const std::string& name) {
  for (const auto& model : baseline_models())
    if (model.name == name) return &model;
  return nullptr;
}

ModelPersonality oracle_model() {
  ModelPersonality oracle;
  oracle.name = "oracle";
  oracle.vendor = "xsec";
  oracle.competence = {};  // empty mask = full competence
  oracle.style_prefix = "";
  return oracle;
}

}  // namespace xsec::llm
