#include "llm/expert.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.hpp"
#include "llm/retrieval.hpp"

namespace xsec::llm {

namespace vocab = mobiflow::vocab;
using vocab::Direction;
using vocab::MsgType;

WindowStats extract_stats(const mobiflow::Trace& trace) {
  WindowStats stats;
  stats.total_records = trace.size();

  std::set<std::uint16_t> setup_rntis;
  std::set<std::uint64_t> ues;
  std::vector<std::int64_t> setup_times;
  // Concurrently-live ownership: a UE stops owning its S-TMSI when its
  // context is released, so sequential benign GUTI reuse is not "replay".
  std::map<std::uint64_t, std::set<std::uint64_t>> tmsi_uplink_owners;
  std::map<std::uint64_t, std::uint64_t> ue_held_tmsi;
  std::set<std::uint64_t> replayed;
  // Per-UE: did it present a protected (non-null-scheme) SUCI?
  std::map<std::uint64_t, bool> protected_suci;
  std::map<std::uint64_t, bool> identity_request_seen;
  std::map<std::uint64_t, bool> auth_request_seen;
  std::set<std::uint64_t> out_of_order;
  std::set<std::uint64_t> null_cipher;
  std::map<std::uint64_t, std::size_t> fresh_setup_index;  // ue -> position
  std::set<std::uint64_t> responded;
  std::size_t index = 0;

  for (const auto& entry : trace.entries()) {
    const mobiflow::Record& r = entry.record;
    ++index;
    ues.insert(r.ue_id);

    // Track concurrent S-TMSI ownership across all uplink presentations.
    if (r.s_tmsi != 0 && r.direction == Direction::kUl) {
      auto& owners = tmsi_uplink_owners[r.s_tmsi];
      owners.insert(r.ue_id);
      ue_held_tmsi[r.ue_id] = r.s_tmsi;
      if (owners.size() >= 2) replayed.insert(r.s_tmsi);
    }
    if (r.msg == MsgType::kRrcRelease) {
      auto held = ue_held_tmsi.find(r.ue_id);
      if (held != ue_held_tmsi.end()) {
        auto owners_it = tmsi_uplink_owners.find(held->second);
        if (owners_it != tmsi_uplink_owners.end())
          owners_it->second.erase(r.ue_id);
        ue_held_tmsi.erase(held);
      }
    }

    if (r.msg == MsgType::kRrcSetupRequest) {
      ++stats.setup_requests;
      if (r.s_tmsi == 0) {
        ++stats.setup_requests_fresh;
        fresh_setup_index.emplace(r.ue_id, index);
      }
      if (r.rnti != 0) setup_rntis.insert(r.rnti);
      setup_times.push_back(r.timestamp_us);
    } else if (r.msg == MsgType::kAuthenticationRequest) {
      ++stats.auth_requests;
      auth_request_seen[r.ue_id] = true;
    } else if (r.msg == MsgType::kAuthenticationResponse) {
      ++stats.auth_responses;
      responded.insert(r.ue_id);
    } else if (r.msg == MsgType::kRegistrationAccept) {
      ++stats.registration_accepts;
    } else if (r.msg == MsgType::kRegistrationRequest) {
      if (!r.suci.empty()) {
        bool null_scheme = r.suci.find("-0-") != std::string::npos;
        if (null_scheme)
          ++stats.null_scheme_registrations;
        else
          protected_suci[r.ue_id] = true;
      }
      if (r.s_tmsi != 0 && r.direction == Direction::kUl)
        tmsi_uplink_owners[r.s_tmsi].insert(r.ue_id);
    } else if (r.msg == MsgType::kIdentityRequest &&
               r.direction == Direction::kDl) {
      identity_request_seen[r.ue_id] = true;
      if (protected_suci.count(r.ue_id)) out_of_order.insert(r.ue_id);
    } else if (r.msg == MsgType::kIdentityResponse &&
               r.direction == Direction::kUl) {
      // An IdentityResponse answering an AuthenticationRequest (no
      // IdentityRequest visible at the tap) is the overwritten-downlink
      // signature of Figure 2a: Auth.Req -> Iden.Resp.
      if (auth_request_seen.count(r.ue_id) &&
          !identity_request_seen.count(r.ue_id))
        out_of_order.insert(r.ue_id);
    } else if (r.msg == MsgType::kSecurityModeCommand ||
               r.msg == MsgType::kRrcSecurityModeCommand) {
      if (r.cipher_alg == vocab::CipherAlg::kNea0 ||
          r.integrity_alg == vocab::IntegrityAlg::kNia0)
        null_cipher.insert(r.ue_id);
    } else if (r.msg == MsgType::kRrcRelease &&
               r.direction == Direction::kDl) {
      if (r.cipher_alg == vocab::CipherAlg::kNone && r.s_tmsi == 0)
        ++stats.incomplete_releases;
    }

    if (!r.supi_plain.empty())
      stats.plaintext_identities.emplace_back(r.supi_plain,
                                              std::string(r.msg_name()));
  }

  // A fresh setup is "abandoned" when its UE never answered the challenge
  // AND the window continues well past the setup — otherwise the missing
  // response may simply lie beyond the window cut.
  constexpr std::size_t kTruncationMargin = 8;
  for (const auto& [ue, setup_index] : fresh_setup_index) {
    if (responded.count(ue)) continue;
    if (trace.size() - setup_index >= kTruncationMargin)
      ++stats.abandoned_fresh_setups;
  }

  stats.distinct_setup_rntis = setup_rntis.size();
  stats.distinct_ues = ues.size();

  if (setup_times.size() >= 2) {
    std::vector<std::int64_t> gaps;
    for (std::size_t i = 1; i < setup_times.size(); ++i)
      gaps.push_back(setup_times[i] - setup_times[i - 1]);
    std::sort(gaps.begin(), gaps.end());
    stats.median_setup_gap_us = gaps[gaps.size() / 2];
  }

  stats.replayed_tmsis.assign(replayed.begin(), replayed.end());
  stats.out_of_order_identity_ues.assign(out_of_order.begin(),
                                         out_of_order.end());
  stats.null_cipher_ues.assign(null_cipher.begin(), null_cipher.end());
  return stats;
}

std::vector<Evidence> extract_evidence(const WindowStats& stats) {
  std::vector<Evidence> evidence;

  // Signaling storm, active phase: several connection attempts from fresh
  // random identities abandoned mid-authentication. TMSI-bearing setups
  // are excluded (returning subscribers / replay, attributed separately),
  // and setups near the window cut are not counted as abandoned.
  if (stats.abandoned_fresh_setups >= 3 && stats.distinct_setup_rntis >= 3) {
    double confidence = std::min(
        1.0, 0.5 + 0.1 * static_cast<double>(stats.abandoned_fresh_setups));
    if (stats.median_setup_gap_us > 0 &&
        stats.median_setup_gap_us < 50'000)
      confidence = std::min(1.0, confidence + 0.15);
    evidence.push_back(
        {SignatureKind::kSignalingStorm, confidence,
         std::to_string(stats.abandoned_fresh_setups) +
             " of " + std::to_string(stats.setup_requests) +
             " RRCSetupRequests (from " +
             std::to_string(stats.distinct_setup_rntis) +
             " distinct RNTIs) were abandoned before completing "
             "authentication (median inter-setup gap " +
             std::to_string(stats.median_setup_gap_us) + "us)"});
  }

  // Signaling storm, aftermath phase: the network mass-releasing contexts
  // that never reached a security context (half-open connection GC).
  if (stats.incomplete_releases >= 3) {
    evidence.push_back(
        {SignatureKind::kSignalingStorm,
         std::min(1.0, 0.5 + 0.1 * static_cast<double>(
                                       stats.incomplete_releases)),
         std::to_string(stats.incomplete_releases) +
             " UE contexts released without ever completing security "
             "setup — the garbage-collection aftermath of a half-open "
             "connection flood"});
  }

  if (!stats.replayed_tmsis.empty()) {
    evidence.push_back(
        {SignatureKind::kTmsiReplay,
         std::min(1.0, 0.7 + 0.15 * static_cast<double>(
                                        stats.replayed_tmsis.size())),
         "S-TMSI value(s) presented from multiple distinct UE contexts: " +
             std::to_string(stats.replayed_tmsis.size()) +
             " replayed identifier(s), first=" +
             std::to_string(stats.replayed_tmsis.front())});
  }

  if (!stats.out_of_order_identity_ues.empty()) {
    double confidence = 0.75;
    // A plaintext identity following the rogue request seals it.
    if (!stats.plaintext_identities.empty()) confidence = 0.95;
    evidence.push_back(
        {SignatureKind::kIdentityRequestOutOfOrder, confidence,
         "IdentityRequest sent to UE(s) that already presented a protected "
         "SUCI (" +
             std::to_string(stats.out_of_order_identity_ues.size()) +
             " UE(s))" +
             (stats.plaintext_identities.empty()
                  ? ""
                  : "; plaintext identity " +
                        stats.plaintext_identities.front().first +
                        " observed in " +
                        stats.plaintext_identities.front().second)});
  }

  // Uplink extraction: plaintext identity in an otherwise-compliant
  // registration (null-scheme SUCI), with no identity request preceding it.
  if (stats.null_scheme_registrations > 0 &&
      stats.out_of_order_identity_ues.empty()) {
    evidence.push_back(
        {SignatureKind::kPlaintextIdentityUplink, 0.7,
         std::to_string(stats.null_scheme_registrations) +
             " registration(s) carried a null-scheme SUCI (cleartext "
             "MSIN)" +
             (stats.plaintext_identities.empty()
                  ? ""
                  : ": " + stats.plaintext_identities.front().first)});
  }

  if (!stats.null_cipher_ues.empty()) {
    evidence.push_back(
        {SignatureKind::kNullCipherDowngrade, 0.9,
         "SecurityModeCommand selected NEA0/NIA0 (null protection) for " +
             std::to_string(stats.null_cipher_ues.size()) + " UE(s)"});
  }

  std::sort(evidence.begin(), evidence.end(),
            [](const Evidence& a, const Evidence& b) {
              return a.confidence > b.confidence;
            });
  return evidence;
}

Analysis ExpertEngine::analyze(
    const mobiflow::Trace& trace,
    const std::vector<SignatureKind>& visible_kinds) const {
  WindowStats stats = extract_stats(trace);
  std::vector<Evidence> all = extract_evidence(stats);

  Analysis analysis;
  if (visible_kinds.empty()) {
    analysis.evidence = std::move(all);
  } else {
    for (const Evidence& e : all)
      if (std::find(visible_kinds.begin(), visible_kinds.end(), e.kind) !=
          visible_kinds.end())
        analysis.evidence.push_back(e);
  }
  analysis.anomalous = !analysis.evidence.empty();
  analysis.narrative = render_narrative(analysis, stats);
  return analysis;
}

std::string render_narrative(const Analysis& analysis,
                             const WindowStats& stats) {
  std::string out;
  if (!analysis.anomalous) {
    out +=
        "Verdict: BENIGN.\n"
        "The sequence follows the expected 5G SA registration call flow: "
        "connection setup, registration, authentication challenge/response, "
        "security mode negotiation with non-null algorithms, and "
        "registration completion. ";
    out += "Across " + std::to_string(stats.total_records) +
           " messages from " + std::to_string(stats.distinct_ues) +
           " UE context(s), no identifier replay, no plaintext permanent "
           "identity, no out-of-order identity procedure, and no null "
           "cipher selection were observed.\n";
    return out;
  }

  const Evidence& primary = analysis.evidence.front();
  const AttackKnowledge& kb = lookup(primary.kind);
  out += "Verdict: ANOMALOUS.\n";
  out += "Observed evidence: " + primary.details + ".\n";
  out += "Why this deviates from benign traffic: " + kb.explanation + "\n";

  out += "Top candidate attacks:\n";
  std::size_t rank = 1;
  std::set<SignatureKind> listed;
  for (const Evidence& e : analysis.evidence) {
    if (rank > 3) break;
    if (listed.count(e.kind)) continue;
    listed.insert(e.kind);
    const AttackKnowledge& entry = lookup(e.kind);
    out += "  " + std::to_string(rank) + ". " + entry.name + " (" +
           entry.aka + "), confidence " + format_fixed(e.confidence, 2) +
           "\n";
    ++rank;
  }
  // Pad the top-3 with category-adjacent alternatives, as an analyst would.
  if (rank <= 3) {
    for (const auto& entry : knowledge_base()) {
      if (rank > 3) break;
      if (listed.count(entry.signature)) continue;
      if (entry.category == kb.category) {
        out += "  " + std::to_string(rank) + ". " + entry.name +
               " (lower likelihood, same category)\n";
        listed.insert(entry.signature);
        ++rank;
      }
    }
  }

  out += "Implications: " + kb.implications + "\n";
  out += "Likely responsible party: " + kb.attribution + "\n";
  out += "Recommended remediations:\n";
  for (const std::string& r : kb.remediations) out += "  - " + r + "\n";

  // Ground the analysis in retrieved specification clauses (the paper's
  // proposed RAG augmentation, §5).
  static const SpecRetriever retriever;
  auto hits = retriever.query(kb.name + " " + kb.explanation, 2);
  if (!hits.empty()) {
    out += "Specification references:";
    for (const RetrievalHit& hit : hits)
      out += " [" + hit.passage->ref + " " + hit.passage->title + "]";
    out += "\n";
  }
  return out;
}

}  // namespace xsec::llm
