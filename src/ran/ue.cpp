#include "ran/ue.hpp"

#include "common/log.hpp"

namespace xsec::ran {

namespace {
constexpr std::uint64_t kMsinMask = (1ULL << 40) - 1;

Key home_network_key(const Plmn& plmn) {
  return subscriber_key("home-network-" + plmn.str());
}

std::uint64_t suci_keystream(const Plmn& plmn, std::uint32_t nonce) {
  Key hk = home_network_key(plmn);
  return kdf(hk, "SUCI", nonce)[0] |
         (static_cast<std::uint64_t>(kdf(hk, "SUCI", nonce)[1]) << 8) |
         (static_cast<std::uint64_t>(kdf(hk, "SUCI", nonce)[2]) << 16) |
         (static_cast<std::uint64_t>(kdf(hk, "SUCI", nonce)[3]) << 24) |
         (static_cast<std::uint64_t>(kdf(hk, "SUCI", nonce)[4]) << 32);
}
}  // namespace

Suci make_suci(const Supi& supi, std::uint32_t nonce, bool null_scheme) {
  Suci suci;
  suci.plmn = supi.plmn;
  if (null_scheme) {
    // Null protection scheme: the "concealed" value IS the MSIN.
    suci.protection_scheme = 0;
    suci.concealed = supi.msin;
    return suci;
  }
  suci.protection_scheme = 1;
  std::uint64_t ks = suci_keystream(supi.plmn, nonce) & kMsinMask;
  suci.concealed =
      (static_cast<std::uint64_t>(nonce & 0xffffff) << 40) |
      ((supi.msin ^ ks) & kMsinMask);
  return suci;
}

std::uint64_t deconceal_suci(const Suci& suci) {
  if (suci.is_null_scheme()) return suci.concealed;
  auto nonce = static_cast<std::uint32_t>(suci.concealed >> 40);
  std::uint64_t ks = suci_keystream(suci.plmn, nonce) & kMsinMask;
  return (suci.concealed & kMsinMask) ^ ks;
}

Ue::Ue(UeConfig config, UeHooks hooks)
    : config_(std::move(config)),
      hooks_(std::move(hooks)),
      rng_(config_.seed),
      k_(subscriber_key(config_.supi.str())) {}

void Ue::power_on() {
  if (rrc_state_ != RrcState::kIdle) return;
  setup_attempts_ = 0;
  send_setup_request();
}

void Ue::send_setup_request() {
  ++setup_attempts_;
  rrc_state_ = RrcState::kSetupRequested;

  RrcSetupRequest req;
  if (config_.stored_guti) {
    req.ue_identity.kind = InitialUeIdentity::Kind::kNg5gSTmsiPart1;
    // Part1 = low 39 bits of the packed S-TMSI.
    req.ue_identity.value =
        config_.stored_guti->s_tmsi.packed() & ((1ULL << 39) - 1);
  } else {
    req.ue_identity.kind = InitialUeIdentity::Kind::kRandomValue;
    req.ue_identity.value = rng_.uniform_u64(0, (1ULL << 39) - 1);
  }
  req.cause = config_.establishment_cause;
  send_rrc(RrcMessage{req});

  // T300: retransmit the setup request if the network does not answer.
  std::uint64_t generation = generation_;
  hooks_.schedule(config_.setup_retry_timeout, [this, generation] {
    if (generation != generation_) return;
    if (rrc_state_ == RrcState::kSetupRequested &&
        setup_attempts_ < config_.max_setup_attempts) {
      XSEC_LOG_DEBUG("ue", config_.supi.str(), " T300 expiry, attempt ",
                     setup_attempts_ + 1);
      send_setup_request();
    } else if (rrc_state_ == RrcState::kSetupRequested) {
      end_session();
    }
  });
}

void Ue::receive(const AirFrame& frame) {
  if (frame.uplink) return;  // not for us
  if (session_ended_) return;
  auto decoded = decode_rrc(frame.rrc_wire);
  if (!decoded) {
    XSEC_LOG_WARN("ue", "undecodable downlink RRC: ",
                  decoded.error().message);
    return;
  }
  const RrcMessage& msg = decoded.value();

  // The RRCSetup delivery carries the assigned C-RNTI in the MAC envelope.
  if (std::holds_alternative<RrcSetup>(msg) && frame.rnti) {
    rnti_ = frame.rnti;
    rnti_history_.push_back(*frame.rnti);
  }

  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RrcSetup>)
          handle_rrc_setup(m);
        else if constexpr (std::is_same_v<T, RrcReject>)
          handle_rrc_reject(m);
        else if constexpr (std::is_same_v<T, RrcRelease>)
          handle_rrc_release(m);
        else if constexpr (std::is_same_v<T, RrcSecurityModeCommand>)
          handle_rrc_security_mode_command(m);
        else if constexpr (std::is_same_v<T, UeCapabilityEnquiry>)
          handle_capability_enquiry(m);
        else if constexpr (std::is_same_v<T, RrcReconfiguration>)
          handle_reconfiguration(m);
        else if constexpr (std::is_same_v<T, DlInformationTransfer>) {
          auto nas = decode_nas(m.dedicated_nas);
          if (!nas) {
            XSEC_LOG_WARN("ue", "undecodable NAS PDU: ", nas.error().message);
            return;
          }
          handle_nas(nas.value());
        }
        // Other downlink messages are ignored by the UE in this subset.
      },
      msg);
}

RegistrationRequest Ue::build_registration_request() {
  RegistrationRequest reg;
  reg.type = RegistrationType::kInitial;
  reg.capabilities = config_.capabilities;
  if (config_.stored_guti) {
    reg.ng_ksi = 0;
    reg.identity = MobileIdentity::from_guti(*config_.stored_guti);
  } else {
    reg.ng_ksi = 7;
    auto nonce = static_cast<std::uint32_t>(rng_.uniform_u64(1, 0xffffff));
    reg.identity = MobileIdentity::from_suci(
        make_suci(config_.supi, nonce, config_.force_null_scheme_suci));
  }
  return reg;
}

void Ue::handle_rrc_setup(const RrcSetup&) {
  if (rrc_state_ != RrcState::kSetupRequested) return;
  rrc_state_ = RrcState::kConnected;
  mm_state_ = MmState::kRegistrationInitiated;

  RrcSetupComplete complete;
  complete.selected_plmn = config_.supi.plmn;
  complete.dedicated_nas = encode_nas(NasMessage{build_registration_request()});
  if (config_.stored_guti) complete.s_tmsi = config_.stored_guti->s_tmsi;
  send_rrc(RrcMessage{complete});
}

void Ue::handle_rrc_reject(const RrcReject& msg) {
  XSEC_LOG_DEBUG("ue", config_.supi.str(), " rejected, wait ",
                 static_cast<int>(msg.wait_time_s), "s");
  rrc_state_ = RrcState::kIdle;
  if (reject_retries_ < config_.max_reject_retries) {
    ++reject_retries_;
    ++generation_;  // cancel the pending T300 timer
    std::uint64_t generation = generation_;
    hooks_.schedule(SimDuration::from_s(msg.wait_time_s),
                    [this, generation] {
                      if (generation != generation_ || session_ended_) return;
                      setup_attempts_ = 0;
                      send_setup_request();
                    });
    return;
  }
  end_session();
}

void Ue::handle_rrc_release(const RrcRelease&) {
  rrc_state_ = RrcState::kIdle;
  rnti_.reset();
  end_session();
}

void Ue::handle_rrc_security_mode_command(const RrcSecurityModeCommand& msg) {
  rrc_cipher_ = msg.cipher;
  rrc_integrity_ = msg.integrity;
  send_rrc(RrcMessage{RrcSecurityModeComplete{}});
}

void Ue::handle_capability_enquiry(const UeCapabilityEnquiry&) {
  UeCapabilityInformation info;
  info.rat_capabilities = "nr;bands=n78,n41";
  info.num_bands = 2;
  send_rrc(RrcMessage{info});
}

void Ue::handle_reconfiguration(const RrcReconfiguration& msg) {
  (void)msg;
  send_rrc(RrcMessage{RrcReconfigurationComplete{}});
}

void Ue::handle_nas(const NasMessage& msg) {
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AuthenticationRequest>)
          handle_authentication_request(m);
        else if constexpr (std::is_same_v<T, NasSecurityModeCommand>)
          handle_nas_security_mode_command(m);
        else if constexpr (std::is_same_v<T, IdentityRequest>)
          handle_identity_request(m);
        else if constexpr (std::is_same_v<T, RegistrationAccept>)
          handle_registration_accept(m);
        else if constexpr (std::is_same_v<T, RegistrationReject>)
          handle_registration_reject(m);
        else if constexpr (std::is_same_v<T, DeregistrationAcceptNw>)
          end_session();
        else if constexpr (std::is_same_v<T, ConfigurationUpdateCommand>) {
          if (m.new_guti) config_.stored_guti = m.new_guti;
        } else if constexpr (std::is_same_v<T, AuthenticationReject>) {
          end_session();
        } else if constexpr (std::is_same_v<T, ServiceAccept>) {
          // No-op: service continues.
        } else if constexpr (std::is_same_v<T, ServiceReject>) {
          end_session();
        }
      },
      msg);
}

void Ue::handle_authentication_request(const AuthenticationRequest& msg) {
  if (!verify_autn(k_, msg.rand, msg.autn)) {
    // Network failed authentication — looks like a rogue gNB.
    send_nas(NasMessage{AuthenticationFailure{MmCause::kMacFailure}});
    return;
  }
  mm_state_ = MmState::kAuthenticated;
  k_amf_ = kdf(k_, "K_AMF", msg.rand);
  send_nas(NasMessage{AuthenticationResponse{compute_res(k_, msg.rand)}});
}

void Ue::handle_nas_security_mode_command(const NasSecurityModeCommand& msg) {
  // A mismatch between replayed and sent capabilities reveals a MiTM
  // bidding-down attack; a compliant UE rejects it.
  if (msg.replayed_capabilities != config_.capabilities &&
      !config_.accept_capability_mismatch) {
    send_nas(NasMessage{NasSecurityModeReject{MmCause::kProtocolError}});
    return;
  }
  nas_cipher_ = msg.cipher;
  nas_integrity_ = msg.integrity;
  nas_security_active_ = true;
  mm_state_ = MmState::kSecured;
  send_nas(NasMessage{NasSecurityModeComplete{}});
}

void Ue::handle_identity_request(const IdentityRequest& msg) {
  MobileIdentity identity;
  if (msg.type == IdentityType::kSuci) {
    auto nonce = static_cast<std::uint32_t>(rng_.uniform_u64(1, 0xffffff));
    // The exploitable behaviour from [32, 40]: before security activation a
    // buggy UE answers with a null-scheme (plaintext) SUCI.
    bool plaintext = !nas_security_active_ && config_.identity_disclosure_bug;
    identity = MobileIdentity::from_suci(
        make_suci(config_.supi, nonce, plaintext));
  } else if (msg.type == IdentityType::kGuti && config_.stored_guti) {
    identity = MobileIdentity::from_guti(*config_.stored_guti);
  }
  send_nas(NasMessage{IdentityResponse{identity}});
}

void Ue::handle_registration_accept(const RegistrationAccept& msg) {
  mm_state_ = MmState::kRegistered;
  config_.stored_guti = msg.guti;
  send_nas(NasMessage{RegistrationComplete{}});
  begin_activity();
}

void Ue::handle_registration_reject(const RegistrationReject& msg) {
  XSEC_LOG_DEBUG("ue", config_.supi.str(), " registration rejected: ",
                 to_string(msg.cause));
  end_session();
}

void Ue::begin_activity() {
  if (reports_sent_ >= config_.activity_reports) {
    if (config_.deregister_at_end) {
      send_nas(NasMessage{DeregistrationRequestUe{false}});
    }
    // Otherwise wait for network-initiated release (inactivity timer).
    return;
  }
  std::uint64_t generation = generation_;
  hooks_.schedule(config_.activity_interval, [this, generation] {
    if (generation != generation_ || session_ended_) return;
    if (rrc_state_ != RrcState::kConnected) return;
    MeasurementReport report;
    report.rsrp_dbm = static_cast<std::int8_t>(rng_.uniform_i64(-110, -70));
    report.rsrq_db = static_cast<std::int8_t>(rng_.uniform_i64(-18, -6));
    send_rrc(RrcMessage{report});
    ++reports_sent_;
    begin_activity();
  });
}

void Ue::send_rrc(const RrcMessage& msg) {
  AirFrame frame;
  frame.rnti = rnti_;
  frame.uplink = true;
  frame.rrc_wire = encode_rrc(msg);
  if (config_.processing_delay.us > 0) {
    // Model the device's baseband processing latency; equal delays keep
    // message order intact.
    hooks_.schedule(config_.processing_delay,
                    [this, f = std::move(frame)]() mutable {
                      if (!session_ended_) hooks_.send(std::move(f));
                    });
  } else {
    hooks_.send(std::move(frame));
  }
}

void Ue::send_nas(const NasMessage& msg) {
  send_rrc(RrcMessage{UlInformationTransfer{encode_nas(msg)}});
}

void Ue::end_session() {
  if (session_ended_) return;
  session_ended_ = true;
  ++generation_;
  if (hooks_.on_session_end) hooks_.on_session_end();
}

}  // namespace xsec::ran
