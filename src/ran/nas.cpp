#include "ran/nas.hpp"

namespace xsec::ran {

MobileIdentity MobileIdentity::from_suci(Suci s) {
  MobileIdentity id;
  id.kind = Kind::kSuci;
  id.suci = s;
  return id;
}

MobileIdentity MobileIdentity::from_guti(Guti g) {
  MobileIdentity id;
  id.kind = Kind::kGuti;
  id.guti = g;
  return id;
}

MobileIdentity MobileIdentity::from_supi_plain(Supi s) {
  MobileIdentity id;
  id.kind = Kind::kSupiPlain;
  id.supi = s;
  return id;
}

std::string MobileIdentity::str() const {
  switch (kind) {
    case Kind::kSuci: return suci ? suci->str() : "suci-?";
    case Kind::kGuti: return guti ? guti->str() : "guti-?";
    case Kind::kSupiPlain: return supi ? supi->str() : "imsi-?";
    case Kind::kNone: return "no-identity";
  }
  return "?";
}

std::string to_string(RegistrationType t) {
  switch (t) {
    case RegistrationType::kInitial: return "initial";
    case RegistrationType::kMobilityUpdating: return "mobility-updating";
    case RegistrationType::kPeriodicUpdating: return "periodic-updating";
    case RegistrationType::kEmergency: return "emergency";
  }
  return "unknown";
}

std::string to_string(MmCause cause) {
  switch (cause) {
    case MmCause::kIllegalUe: return "illegal-UE";
    case MmCause::kPlmnNotAllowed: return "PLMN-not-allowed";
    case MmCause::kCongestion: return "congestion";
    case MmCause::kMacFailure: return "MAC-failure";
    case MmCause::kSynchFailure: return "synch-failure";
    case MmCause::kProtocolError: return "protocol-error";
  }
  return "unknown";
}

std::string to_string(IdentityType t) {
  switch (t) {
    case IdentityType::kSuci: return "SUCI";
    case IdentityType::kGuti: return "GUTI";
    case IdentityType::kImei: return "IMEI";
    case IdentityType::kImeisv: return "IMEISV";
  }
  return "unknown";
}

namespace {
template <class>
inline constexpr bool always_false_v = false;
}  // namespace

std::string nas_name(const NasMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RegistrationRequest>)
          return "RegistrationRequest";
        else if constexpr (std::is_same_v<T, AuthenticationResponse>)
          return "AuthenticationResponse";
        else if constexpr (std::is_same_v<T, AuthenticationFailure>)
          return "AuthenticationFailure";
        else if constexpr (std::is_same_v<T, NasSecurityModeComplete>)
          return "SecurityModeComplete";
        else if constexpr (std::is_same_v<T, NasSecurityModeReject>)
          return "SecurityModeReject";
        else if constexpr (std::is_same_v<T, IdentityResponse>)
          return "IdentityResponse";
        else if constexpr (std::is_same_v<T, RegistrationComplete>)
          return "RegistrationComplete";
        else if constexpr (std::is_same_v<T, ServiceRequest>)
          return "ServiceRequest";
        else if constexpr (std::is_same_v<T, DeregistrationRequestUe>)
          return "DeregistrationRequest";
        else if constexpr (std::is_same_v<T, AuthenticationRequest>)
          return "AuthenticationRequest";
        else if constexpr (std::is_same_v<T, AuthenticationReject>)
          return "AuthenticationReject";
        else if constexpr (std::is_same_v<T, NasSecurityModeCommand>)
          return "SecurityModeCommand";
        else if constexpr (std::is_same_v<T, IdentityRequest>)
          return "IdentityRequest";
        else if constexpr (std::is_same_v<T, RegistrationAccept>)
          return "RegistrationAccept";
        else if constexpr (std::is_same_v<T, RegistrationReject>)
          return "RegistrationReject";
        else if constexpr (std::is_same_v<T, ServiceAccept>)
          return "ServiceAccept";
        else if constexpr (std::is_same_v<T, ServiceReject>)
          return "ServiceReject";
        else if constexpr (std::is_same_v<T, DeregistrationAcceptNw>)
          return "DeregistrationAccept";
        else if constexpr (std::is_same_v<T, ConfigurationUpdateCommand>)
          return "ConfigurationUpdateCommand";
        else
          static_assert(always_false_v<T>, "unhandled NAS message");
      },
      msg);
}

bool nas_is_uplink(const NasMessage& msg) {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        return std::is_same_v<T, RegistrationRequest> ||
               std::is_same_v<T, AuthenticationResponse> ||
               std::is_same_v<T, AuthenticationFailure> ||
               std::is_same_v<T, NasSecurityModeComplete> ||
               std::is_same_v<T, NasSecurityModeReject> ||
               std::is_same_v<T, IdentityResponse> ||
               std::is_same_v<T, RegistrationComplete> ||
               std::is_same_v<T, ServiceRequest> ||
               std::is_same_v<T, DeregistrationRequestUe>;
      },
      msg);
}

const std::vector<std::string>& nas_all_names() {
  static const std::vector<std::string> names = {
      "RegistrationRequest",   "AuthenticationResponse",
      "AuthenticationFailure", "SecurityModeComplete",
      "SecurityModeReject",    "IdentityResponse",
      "RegistrationComplete",  "ServiceRequest",
      "DeregistrationRequest", "AuthenticationRequest",
      "AuthenticationReject",  "SecurityModeCommand",
      "IdentityRequest",       "RegistrationAccept",
      "RegistrationReject",    "ServiceAccept",
      "ServiceReject",         "DeregistrationAccept",
      "ConfigurationUpdateCommand",
  };
  return names;
}

}  // namespace xsec::ran
