// NAS 5GMM (Non-Access-Stratum mobility management, TS 24.501 subset).
//
// NAS messages ride inside RRC information-transfer containers between the
// UE and the AMF; they are the second message family MobiFlow records. The
// subset covers registration, 5G-AKA authentication, NAS security mode,
// identity procedures (the identity-extraction attacks), service requests,
// and deregistration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "ran/identifiers.hpp"
#include "ran/security.hpp"

namespace xsec::ran {

/// 5GS mobile identity: exactly one of SUCI / GUTI / plaintext SUPI (IMSI).
/// A plaintext SUPI on the air interface is the identity-extraction red
/// flag; the standard only allows it in degenerate null-scheme cases.
struct MobileIdentity {
  enum class Kind : std::uint8_t { kSuci = 0, kGuti = 1, kSupiPlain = 2, kNone = 3 };
  Kind kind = Kind::kNone;
  std::optional<Suci> suci;
  std::optional<Guti> guti;
  std::optional<Supi> supi;

  static MobileIdentity from_suci(Suci s);
  static MobileIdentity from_guti(Guti g);
  static MobileIdentity from_supi_plain(Supi s);

  std::string str() const;
};

enum class RegistrationType : std::uint8_t {
  kInitial = 1,
  kMobilityUpdating = 2,
  kPeriodicUpdating = 3,
  kEmergency = 4,
};
std::string to_string(RegistrationType t);

/// 5GMM cause values (24.501 §9.11.3.2 subset).
enum class MmCause : std::uint8_t {
  kIllegalUe = 3,
  kPlmnNotAllowed = 11,
  kCongestion = 22,
  kMacFailure = 20,
  kSynchFailure = 21,
  kProtocolError = 111,
};
std::string to_string(MmCause cause);

enum class IdentityType : std::uint8_t {
  kSuci = 1,
  kGuti = 2,
  kImei = 3,
  kImeisv = 5,
};
std::string to_string(IdentityType t);

// --- Uplink NAS ------------------------------------------------------------

struct RegistrationRequest {
  RegistrationType type = RegistrationType::kInitial;
  std::uint8_t ng_ksi = 7;  // 7 = no key available
  MobileIdentity identity;
  SecurityCapabilities capabilities;
};

struct AuthenticationResponse {
  std::uint64_t res = 0;
};

struct AuthenticationFailure {
  MmCause cause = MmCause::kMacFailure;
};

struct NasSecurityModeComplete {
  /// The full initial NAS message is replayed ciphered per 24.501 §5.4.2.3.
  std::optional<Supi> imeisv_supi;  // elided; presence flag only
};

struct NasSecurityModeReject {
  MmCause cause = MmCause::kProtocolError;
};

struct IdentityResponse {
  MobileIdentity identity;
};

struct RegistrationComplete {};

struct ServiceRequest {
  std::uint8_t service_type = 0;
  std::optional<STmsi> s_tmsi;
};

struct DeregistrationRequestUe {
  bool switch_off = false;
};

// --- Downlink NAS ----------------------------------------------------------

struct AuthenticationRequest {
  std::uint8_t ng_ksi = 0;
  std::uint64_t rand = 0;
  std::uint64_t autn = 0;
};

struct AuthenticationReject {};

struct NasSecurityModeCommand {
  CipherAlg cipher = CipherAlg::kNea2;
  IntegrityAlg integrity = IntegrityAlg::kNia2;
  SecurityCapabilities replayed_capabilities;
};

struct IdentityRequest {
  IdentityType type = IdentityType::kSuci;
};

struct RegistrationAccept {
  Guti guti;
  std::uint16_t t3512_min = 54;  // periodic registration timer
};

struct RegistrationReject {
  MmCause cause = MmCause::kPlmnNotAllowed;
};

struct ServiceAccept {};

struct ServiceReject {
  MmCause cause = MmCause::kCongestion;
};

struct DeregistrationAcceptNw {};

struct ConfigurationUpdateCommand {
  std::optional<Guti> new_guti;
};

using NasMessage = std::variant<
    RegistrationRequest, AuthenticationResponse, AuthenticationFailure,
    NasSecurityModeComplete, NasSecurityModeReject, IdentityResponse,
    RegistrationComplete, ServiceRequest, DeregistrationRequestUe,
    AuthenticationRequest, AuthenticationReject, NasSecurityModeCommand,
    IdentityRequest, RegistrationAccept, RegistrationReject, ServiceAccept,
    ServiceReject, DeregistrationAcceptNw, ConfigurationUpdateCommand>;

std::string nas_name(const NasMessage& msg);
bool nas_is_uplink(const NasMessage& msg);
const std::vector<std::string>& nas_all_names();

}  // namespace xsec::ran
