// gNodeB: collapsed O-DU + O-CU logical node.
//
// Terminates RRC toward UEs, relays NAS to the AMF over NGAP, and — the
// part 6G-XSec cares about — mirrors every RRC message into an F1AP
// envelope and every NAS PDU into an NGAP envelope on the InterfaceTaps, so
// the RIC agent can collect telemetry exactly where the paper instruments
// OAI. Admission control (a bounded UE-context table) is what the BTS DoS
// attack exhausts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "ran/codec.hpp"
#include "ran/interfaces.hpp"
#include "ran/security.hpp"

namespace xsec::ran {

struct GnbConfig {
  CellId cell{1, 1};
  /// Admission limit: simultaneous UE contexts the DU can hold. The BTS DoS
  /// attack fills this, causing RRCReject for legitimate UEs.
  std::size_t max_ue_contexts = 64;
  /// Incomplete connections (no registration progress) are garbage
  /// collected after this long.
  SimDuration context_setup_timeout = SimDuration::from_ms(400);
  /// Registered-but-silent UEs are released after this long.
  SimDuration inactivity_timeout = SimDuration::from_ms(300);
  AlgorithmPolicy rrc_policy;
  std::uint64_t seed = 7;
  /// Base offset for RAN UE NGAP ids, so several gNBs sharing one AMF
  /// allocate from disjoint id spaces (the testbed routes downlink NGAP
  /// back by this).
  std::uint64_t ngap_id_base = 0;
};

struct GnbHooks {
  std::function<void(AirFrame)> send_downlink;
  std::function<SimTime()> now;
  std::function<void(SimDuration, std::function<void()>)> schedule;
  /// Uplink NGAP toward the AMF (already tap-mirrored by the gNB).
  std::function<void(Bytes)> to_amf;
};

class Gnb {
 public:
  Gnb(GnbConfig config, GnbHooks hooks, InterfaceTaps* taps);

  Gnb(const Gnb&) = delete;
  Gnb& operator=(const Gnb&) = delete;

  /// Delivers an uplink frame from the radio.
  void on_uplink(const AirFrame& frame);
  /// Delivers a downlink NGAP message from the AMF.
  void on_ngap(const Bytes& ngap_wire);

  /// RIC-initiated remediation: releases the UE context holding `rnti`.
  /// Returns false if no such context exists.
  bool force_release(Rnti rnti);
  /// RIC-initiated remediation against half-open floods: releases every
  /// context that has not reached the active state and has been idle for
  /// at least `min_age`. Returns the number of contexts released.
  std::size_t release_stale_contexts(SimDuration min_age);
  /// RIC-initiated remediation against S-TMSI replay (Blind DoS): setups
  /// presenting this identifier are rejected until unblocked.
  void block_tmsi(std::uint64_t s_tmsi_part1);
  void unblock_tmsi(std::uint64_t s_tmsi_part1);
  std::size_t blocked_tmsi_count() const { return blocked_tmsis_.size(); }
  std::size_t blocked_setup_attempts() const { return blocked_setups_; }

  /// RIC-initiated remediation against signalling storms: caps RRC setup
  /// admissions to `max_setups` per sliding `window`. Setups beyond the cap
  /// are rejected (RrcReject) until the window drains. 0 disables.
  void set_setup_rate_limit(std::uint32_t max_setups, SimDuration window);
  void clear_setup_rate_limit() { rate_limit_max_ = 0; admit_times_.clear(); }
  bool rate_limit_active() const { return rate_limit_max_ > 0; }
  std::size_t rate_limited_setups() const { return rate_limited_setups_; }

  /// RIC-initiated isolation: while isolated the gNB admits NO new RRC
  /// connections (existing contexts keep running). The strongest graded
  /// mitigation action; always paired with a TTL-driven de-isolation.
  void set_isolated(bool isolated) { isolated_ = isolated; }
  bool isolated() const { return isolated_; }
  std::size_t isolation_rejects() const { return isolation_rejects_; }

  std::size_t active_contexts() const { return contexts_.size(); }
  std::size_t rejected_connections() const { return rejected_; }
  std::size_t admitted_connections() const { return admitted_; }
  const GnbConfig& config() const { return config_; }

 private:
  enum class CtxState {
    kSetup,          // RRCSetup sent, awaiting SetupComplete
    kRegistering,    // NAS in flight
    kSecuring,       // RRC security mode in progress
    kActive,         // fully configured
  };

  struct UeContext {
    std::uint32_t du_ue_id = 0;
    std::uint64_t ran_ue_ngap_id = 0;
    Rnti rnti;
    std::uint64_t radio_tag = 0;
    CtxState state = CtxState::kSetup;
    SimTime last_activity;
    bool release_pending = false;
  };

  void handle_rrc(UeContext& ctx, const RrcMessage& msg);
  void send_rrc_dl(UeContext& ctx, const RrcMessage& msg);
  void forward_nas_ul(UeContext& ctx, const Bytes& nas_pdu, bool initial);
  void send_ngap(const NgapMessage& msg);
  void release_context(std::uint64_t ran_ue_ngap_id, bool notify_ue);
  void arm_context_timer(std::uint64_t ran_ue_ngap_id);
  UeContext* find_by_ran_id(std::uint64_t ran_ue_ngap_id);
  void tap_f1(F1apProcedure proc, const UeContext& ctx, const Bytes& rrc);

  GnbConfig config_;
  GnbHooks hooks_;
  InterfaceTaps* taps_;
  RntiAllocator rnti_alloc_;
  std::map<std::uint16_t, UeContext> contexts_;  // keyed by RNTI value
  std::uint32_t next_du_ue_id_ = 1;
  std::size_t rejected_ = 0;
  std::size_t admitted_ = 0;
  std::set<std::uint64_t> blocked_tmsis_;  // 39-bit ng-5G-S-TMSI-Part1
  std::size_t blocked_setups_ = 0;

  // --- graded mitigation state (RIC-controlled) ---
  bool isolated_ = false;
  std::size_t isolation_rejects_ = 0;
  std::uint32_t rate_limit_max_ = 0;  // 0 = no rate limit
  SimDuration rate_limit_window_{0};
  std::deque<SimTime> admit_times_;  // admissions inside the sliding window
  std::size_t rate_limited_setups_ = 0;
};

}  // namespace xsec::ran
