// AMF (Access and Mobility Management Function) — the 5G core's NAS
// endpoint. Runs 5G-AKA against the subscriber database, drives NAS
// security mode, allocates GUTIs, and accepts registrations. Sits behind
// the gNB over NGAP; per the paper's threat model the core is trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "ran/codec.hpp"
#include "ran/interfaces.hpp"
#include "ran/nas.hpp"
#include "ran/security.hpp"

namespace xsec::ran {

/// Provisioned subscribers. Keys are derived deterministically from the
/// SUPI (the same derivation the UE's simulated SIM uses), so provisioning
/// is just membership.
class SubscriberDb {
 public:
  void provision(const Supi& supi) { supis_.insert(supi); }
  bool is_provisioned(const Supi& supi) const { return supis_.count(supi) > 0; }
  std::optional<Supi> find_by_msin(std::uint64_t msin, const Plmn& plmn) const;
  std::size_t size() const { return supis_.size(); }

 private:
  std::set<Supi> supis_;
};

struct AmfConfig {
  Plmn plmn = Plmn::test_network();
  AlgorithmPolicy nas_policy;
  /// Authentication / identity procedure timeout.
  SimDuration procedure_timeout = SimDuration::from_ms(300);
  std::uint64_t seed = 11;
};

struct AmfHooks {
  std::function<void(Bytes)> to_gnb;  // downlink NGAP
  std::function<SimTime()> now;
  std::function<void(SimDuration, std::function<void()>)> schedule;
};

class Amf {
 public:
  Amf(AmfConfig config, AmfHooks hooks, SubscriberDb* db);

  Amf(const Amf&) = delete;
  Amf& operator=(const Amf&) = delete;

  /// Delivers an uplink NGAP message from the gNB.
  void on_ngap(const Bytes& ngap_wire);

  /// Pages a registered subscriber (mobile-terminated traffic arrived).
  /// Broadcasts the subscriber's current 5G-S-TMSI via the gNB. Returns
  /// false when the subscriber holds no GUTI.
  bool page(const Supi& supi);
  std::size_t pages_sent() const { return pages_sent_; }

  std::size_t registered_count() const { return registered_; }
  std::size_t auth_failures() const { return auth_failures_; }
  std::size_t active_sessions() const { return sessions_.size(); }

 private:
  enum class NasState {
    kIdle,
    kAwaitingIdentity,
    kAwaitingAuthResponse,
    kAwaitingSmcComplete,
    kAwaitingRegComplete,
    kRegistered,
  };

  struct Session {
    std::uint64_t ran_ue_ngap_id = 0;
    std::uint64_t amf_ue_ngap_id = 0;
    NasState state = NasState::kIdle;
    std::optional<Supi> supi;
    SecurityCapabilities capabilities;
    std::uint64_t expected_res = 0;
    std::uint64_t auth_rand = 0;
    std::uint64_t generation = 0;  // cancels stale procedure timers
  };

  void handle_nas(Session& session, const NasMessage& msg);
  void handle_registration_request(Session& session,
                                   const RegistrationRequest& msg);
  void start_authentication(Session& session);
  void send_nas(Session& session, const NasMessage& msg);
  void release(Session& session);
  void arm_procedure_timer(Session& session);
  std::optional<Supi> resolve_identity(const MobileIdentity& identity);
  Guti allocate_guti(const Supi& supi);

  AmfConfig config_;
  AmfHooks hooks_;
  SubscriberDb* db_;
  Rng rng_;
  std::map<std::uint64_t, Session> sessions_;  // keyed by ran_ue_ngap_id
  std::map<std::uint64_t, Supi> guti_map_;     // packed S-TMSI -> SUPI
  std::uint64_t next_amf_ue_id_ = 1;
  std::size_t registered_ = 0;
  std::size_t auth_failures_ = 0;
  std::size_t pages_sent_ = 0;
};

}  // namespace xsec::ran
