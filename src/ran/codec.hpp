// Wire codec for RRC and NAS messages.
//
// Stands in for ASN.1 UPER (RRC) and the 24.501 TLV encoding (NAS): a type
// tag followed by fixed-order fields. Round-tripping through this codec is
// what the trace files, the F1AP/NGAP shims, and the E2 indications carry,
// so the MobiFlow agent genuinely *parses* captured bytes rather than being
// handed in-memory structs.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "ran/nas.hpp"
#include "ran/rrc.hpp"

namespace xsec::ran {

Bytes encode_rrc(const RrcMessage& msg);
Result<RrcMessage> decode_rrc(const Bytes& wire);

Bytes encode_nas(const NasMessage& msg);
Result<NasMessage> decode_nas(const Bytes& wire);

// Identifier field helpers shared with the E2SM encoding.
void encode_mobile_identity(ByteWriter& w, const MobileIdentity& id);
Result<MobileIdentity> decode_mobile_identity(ByteReader& r);
void encode_guti(ByteWriter& w, const Guti& guti);
Result<Guti> decode_guti(ByteReader& r);

}  // namespace xsec::ran
