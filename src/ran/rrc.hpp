// RRC (Radio Resource Control, TS 38.331 subset) message taxonomy.
//
// These are the layer-3 control messages MobiFlow records as the `msg`
// telemetry field. Each message is a plain struct; RrcMessage is the sum
// type carried over the simulated Uu/F1 interfaces. The subset covers every
// message the paper's five attacks and the benign registration flow touch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/bytes.hpp"
#include "ran/identifiers.hpp"
#include "ran/security.hpp"

namespace xsec::ran {

/// RRC establishment cause (38.331 §6.2.2) — a MobiFlow state field.
enum class EstablishmentCause : std::uint8_t {
  kEmergency = 0,
  kHighPriorityAccess,
  kMtAccess,
  kMoSignalling,
  kMoData,
  kMoVoiceCall,
  kMoVideoCall,
  kMoSms,
  kMpsPriorityAccess,
  kMcsPriorityAccess,
};
std::string to_string(EstablishmentCause cause);

/// Initial UE identity in RRCSetupRequest: either a random 39-bit value or
/// the 39-bit ng-5G-S-TMSI-Part1. Replaying a victim's part1 across
/// sessions is the Blind DoS signature.
struct InitialUeIdentity {
  enum class Kind : std::uint8_t { kRandomValue = 0, kNg5gSTmsiPart1 = 1 };
  Kind kind = Kind::kRandomValue;
  std::uint64_t value = 0;  // 39 bits

  auto operator<=>(const InitialUeIdentity&) const = default;
  std::string str() const;
};

// --- Uplink RRC messages -------------------------------------------------

struct RrcSetupRequest {
  InitialUeIdentity ue_identity;
  EstablishmentCause cause = EstablishmentCause::kMoSignalling;
};

struct RrcSetupComplete {
  Plmn selected_plmn;
  /// Piggybacked initial NAS message (RegistrationRequest / ServiceRequest).
  Bytes dedicated_nas;
  std::optional<STmsi> s_tmsi;  // ng-5G-S-TMSI-Part2 context
};

struct RrcSecurityModeComplete {};
struct RrcSecurityModeFailure {
  std::uint8_t cause = 0;
};

struct UeCapabilityInformation {
  std::string rat_capabilities = "nr";  // abbreviated capability blob
  std::uint8_t num_bands = 4;
};

struct RrcReconfigurationComplete {};

struct UlInformationTransfer {
  Bytes dedicated_nas;
};

struct MeasurementReport {
  std::int8_t rsrp_dbm = -90;
  std::int8_t rsrq_db = -12;
};

struct RrcReestablishmentRequest {
  Rnti old_rnti;
  std::uint16_t phys_cell_id = 0;
  std::uint8_t cause = 0;
};

// --- Downlink RRC messages -----------------------------------------------

struct RrcSetup {
  // SRB1 configuration elided; the assigned C-RNTI lives in the MAC header
  // and is tracked in the message envelope.
};

struct RrcReject {
  std::uint8_t wait_time_s = 1;
};

struct RrcSecurityModeCommand {
  CipherAlg cipher = CipherAlg::kNea2;
  IntegrityAlg integrity = IntegrityAlg::kNia2;
};

struct UeCapabilityEnquiry {};

struct RrcReconfiguration {
  std::uint8_t transaction_id = 0;
};

struct DlInformationTransfer {
  Bytes dedicated_nas;
};

struct RrcRelease {
  enum class Cause : std::uint8_t { kNormal = 0, kOther = 1 };
  Cause cause = Cause::kNormal;
  bool suspend = false;
};

/// Paging (38.331 §5.3.2): broadcast on the paging channel with the full
/// ng-5G-S-TMSI in the clear — which is exactly how Blind DoS attackers
/// harvest victim identifiers.
struct Paging {
  std::uint64_t s_tmsi_packed = 0;
};

using RrcMessage =
    std::variant<RrcSetupRequest, RrcSetupComplete, RrcSecurityModeComplete,
                 RrcSecurityModeFailure, UeCapabilityInformation,
                 RrcReconfigurationComplete, UlInformationTransfer,
                 MeasurementReport, RrcReestablishmentRequest, RrcSetup,
                 RrcReject, RrcSecurityModeCommand, UeCapabilityEnquiry,
                 RrcReconfiguration, DlInformationTransfer, RrcRelease,
                 Paging>;

/// Stable wire/telemetry name for a message ("RRCSetupRequest", ...).
std::string rrc_name(const RrcMessage& msg);
/// True for messages sent UE -> network.
bool rrc_is_uplink(const RrcMessage& msg);

/// Complete list of RRC message names in codec order (for one-hot vocab).
const std::vector<std::string>& rrc_all_names();

}  // namespace xsec::ran
