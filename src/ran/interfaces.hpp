// O-RAN data-plane interface shims: Uu (air), F1AP (O-DU <-> O-CU, TS
// 38.473 subset) and NGAP (O-CU <-> AMF, TS 38.413 subset).
//
// The paper's RIC agent "instruments these interfaces or parses the pcap
// streams" to extract MobiFlow telemetry. We reproduce that: every RRC
// message crossing DU<->CU is wrapped in an F1apMessage and every NAS PDU
// crossing CU<->AMF in an NgapMessage, both byte-encoded; taps observe the
// *encoded* traffic and must parse it, exactly like a pcap-based collector.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"
#include "ran/identifiers.hpp"

namespace xsec::ran {

/// A frame on the simulated air interface. The RNTI is absent only on the
/// very first CCCH uplink (RRCSetupRequest before the gNB assigns a C-RNTI).
/// `radio_tag` models the MAC-layer RA-RNTI / contention-resolution
/// correlation: the cell stamps uplink frames with the transmitting
/// endpoint's tag and routes downlink frames back by the same tag.
struct AirFrame {
  std::optional<Rnti> rnti;
  bool uplink = true;
  Bytes rrc_wire;
  std::uint64_t radio_tag = 0;
};

/// F1AP procedure codes (subset).
enum class F1apProcedure : std::uint8_t {
  kInitialUlRrcMessageTransfer = 0,
  kUlRrcMessageTransfer = 1,
  kDlRrcMessageTransfer = 2,
  kUeContextSetup = 3,
  kUeContextRelease = 4,
};
std::string to_string(F1apProcedure p);

struct F1apMessage {
  F1apProcedure procedure = F1apProcedure::kUlRrcMessageTransfer;
  std::uint32_t gnb_du_ue_id = 0;
  Rnti rnti;
  CellId cell;
  Bytes rrc_container;  // encoded RrcMessage (empty for context procedures)
};

Bytes encode_f1ap(const F1apMessage& msg);
Result<F1apMessage> decode_f1ap(const Bytes& wire);

/// NGAP procedure codes (subset).
enum class NgapProcedure : std::uint8_t {
  kInitialUeMessage = 0,
  kUplinkNasTransport = 1,
  kDownlinkNasTransport = 2,
  kInitialContextSetup = 3,
  kUeContextReleaseCommand = 4,
  kUeContextReleaseComplete = 5,
  kPaging = 6,
};
std::string to_string(NgapProcedure p);

struct NgapMessage {
  NgapProcedure procedure = NgapProcedure::kUplinkNasTransport;
  std::uint64_t ran_ue_ngap_id = 0;
  std::uint64_t amf_ue_ngap_id = 0;
  Bytes nas_pdu;  // encoded NasMessage (empty for context procedures)
  /// kPaging only: the packed 5G-S-TMSI to page.
  std::uint64_t paging_tmsi = 0;
};

Bytes encode_ngap(const NgapMessage& msg);
Result<NgapMessage> decode_ngap(const Bytes& wire);

/// Interface taps — how the RIC agent sees data-plane traffic. Handlers
/// receive the encoded interface message; decoding failures are the tap's
/// problem (as with real pcap capture).
struct InterfaceTaps {
  using F1Handler = std::function<void(SimTime, const Bytes& f1ap_wire)>;
  using NgHandler = std::function<void(SimTime, const Bytes& ngap_wire)>;

  void add_f1_tap(F1Handler handler) { f1_taps.push_back(std::move(handler)); }
  void add_ng_tap(NgHandler handler) { ng_taps.push_back(std::move(handler)); }

  void emit_f1(SimTime t, const Bytes& wire) const {
    for (const auto& tap : f1_taps) tap(t, wire);
  }
  void emit_ng(SimTime t, const Bytes& wire) const {
    for (const auto& tap : ng_taps) tap(t, wire);
  }

  std::vector<F1Handler> f1_taps;
  std::vector<NgHandler> ng_taps;
};

}  // namespace xsec::ran
