#include "ran/rrc.hpp"

#include <cstdio>

namespace xsec::ran {

std::string to_string(EstablishmentCause cause) {
  switch (cause) {
    case EstablishmentCause::kEmergency: return "emergency";
    case EstablishmentCause::kHighPriorityAccess: return "highPriorityAccess";
    case EstablishmentCause::kMtAccess: return "mt-Access";
    case EstablishmentCause::kMoSignalling: return "mo-Signalling";
    case EstablishmentCause::kMoData: return "mo-Data";
    case EstablishmentCause::kMoVoiceCall: return "mo-VoiceCall";
    case EstablishmentCause::kMoVideoCall: return "mo-VideoCall";
    case EstablishmentCause::kMoSms: return "mo-SMS";
    case EstablishmentCause::kMpsPriorityAccess: return "mps-PriorityAccess";
    case EstablishmentCause::kMcsPriorityAccess: return "mcs-PriorityAccess";
  }
  return "unknown";
}

std::string InitialUeIdentity::str() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s:%010llx",
                kind == Kind::kRandomValue ? "rand" : "tmsi1",
                static_cast<unsigned long long>(value));
  return buf;
}

namespace {
template <class>
inline constexpr bool always_false_v = false;
}  // namespace

std::string rrc_name(const RrcMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RrcSetupRequest>)
          return "RRCSetupRequest";
        else if constexpr (std::is_same_v<T, RrcSetupComplete>)
          return "RRCSetupComplete";
        else if constexpr (std::is_same_v<T, RrcSecurityModeComplete>)
          return "RRCSecurityModeComplete";
        else if constexpr (std::is_same_v<T, RrcSecurityModeFailure>)
          return "RRCSecurityModeFailure";
        else if constexpr (std::is_same_v<T, UeCapabilityInformation>)
          return "UECapabilityInformation";
        else if constexpr (std::is_same_v<T, RrcReconfigurationComplete>)
          return "RRCReconfigurationComplete";
        else if constexpr (std::is_same_v<T, UlInformationTransfer>)
          return "ULInformationTransfer";
        else if constexpr (std::is_same_v<T, MeasurementReport>)
          return "MeasurementReport";
        else if constexpr (std::is_same_v<T, RrcReestablishmentRequest>)
          return "RRCReestablishmentRequest";
        else if constexpr (std::is_same_v<T, RrcSetup>)
          return "RRCSetup";
        else if constexpr (std::is_same_v<T, RrcReject>)
          return "RRCReject";
        else if constexpr (std::is_same_v<T, RrcSecurityModeCommand>)
          return "RRCSecurityModeCommand";
        else if constexpr (std::is_same_v<T, UeCapabilityEnquiry>)
          return "UECapabilityEnquiry";
        else if constexpr (std::is_same_v<T, RrcReconfiguration>)
          return "RRCReconfiguration";
        else if constexpr (std::is_same_v<T, DlInformationTransfer>)
          return "DLInformationTransfer";
        else if constexpr (std::is_same_v<T, RrcRelease>)
          return "RRCRelease";
        else if constexpr (std::is_same_v<T, Paging>)
          return "Paging";
        else
          static_assert(always_false_v<T>, "unhandled RRC message");
      },
      msg);
}

bool rrc_is_uplink(const RrcMessage& msg) {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        return std::is_same_v<T, RrcSetupRequest> ||
               std::is_same_v<T, RrcSetupComplete> ||
               std::is_same_v<T, RrcSecurityModeComplete> ||
               std::is_same_v<T, RrcSecurityModeFailure> ||
               std::is_same_v<T, UeCapabilityInformation> ||
               std::is_same_v<T, RrcReconfigurationComplete> ||
               std::is_same_v<T, UlInformationTransfer> ||
               std::is_same_v<T, MeasurementReport> ||
               std::is_same_v<T, RrcReestablishmentRequest>;
      },
      msg);
}

const std::vector<std::string>& rrc_all_names() {
  static const std::vector<std::string> names = {
      "RRCSetupRequest",        "RRCSetupComplete",
      "RRCSecurityModeComplete", "RRCSecurityModeFailure",
      "UECapabilityInformation", "RRCReconfigurationComplete",
      "ULInformationTransfer",   "MeasurementReport",
      "RRCReestablishmentRequest", "RRCSetup",
      "RRCReject",               "RRCSecurityModeCommand",
      "UECapabilityEnquiry",     "RRCReconfiguration",
      "DLInformationTransfer",   "RRCRelease",
      "Paging",
  };
  return names;
}

}  // namespace xsec::ran
