#include "ran/identifiers.hpp"

#include <algorithm>
#include <cstdio>

namespace xsec::ran {

std::string Rnti::str() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", value);
  return buf;
}

std::string STmsi::str() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%03u-%02u-0x%08X", amf_set_id, amf_pointer,
                tmsi);
  return buf;
}

std::string Plmn::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03u/%02u", mcc, mnc);
  return buf;
}

std::string Supi::str() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "imsi-%03u%02u%010llu", plmn.mcc, plmn.mnc,
                static_cast<unsigned long long>(msin));
  return buf;
}

std::string Suci::str() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "suci-%03u-%02u-%u-%016llx", plmn.mcc,
                plmn.mnc, protection_scheme,
                static_cast<unsigned long long>(concealed));
  return buf;
}

std::string Guti::str() const {
  return "5g-guti-" + plmn.str() + "-r" + std::to_string(amf_region) + "-" +
         s_tmsi.str();
}

std::string CellId::str() const {
  return "nci-" + std::to_string(gnb_id) + "-" + std::to_string(cell);
}

std::optional<Rnti> RntiAllocator::allocate() {
  constexpr std::size_t kSpan =
      static_cast<std::size_t>(Rnti::kMaxCRnti) - Rnti::kMinCRnti + 1;
  if (used_.size() >= kSpan) return std::nullopt;
  for (;;) {
    auto candidate = static_cast<std::uint16_t>(
        rng_.uniform_u64(Rnti::kMinCRnti, Rnti::kMaxCRnti));
    auto it = std::lower_bound(used_.begin(), used_.end(), candidate);
    if (it == used_.end() || *it != candidate) {
      used_.insert(it, candidate);
      return Rnti{candidate};
    }
  }
}

void RntiAllocator::release(Rnti rnti) {
  auto it = std::lower_bound(used_.begin(), used_.end(), rnti.value);
  if (it != used_.end() && *it == rnti.value) used_.erase(it);
}

}  // namespace xsec::ran
