#include "ran/security.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace xsec::ran {

std::string to_string(CipherAlg alg) {
  switch (alg) {
    case CipherAlg::kNea0: return "NEA0";
    case CipherAlg::kNea1: return "NEA1";
    case CipherAlg::kNea2: return "NEA2";
    case CipherAlg::kNea3: return "NEA3";
  }
  return "NEA?";
}

std::string to_string(IntegrityAlg alg) {
  switch (alg) {
    case IntegrityAlg::kNia0: return "NIA0";
    case IntegrityAlg::kNia1: return "NIA1";
    case IntegrityAlg::kNia2: return "NIA2";
    case IntegrityAlg::kNia3: return "NIA3";
  }
  return "NIA?";
}

std::string SecurityCapabilities::str() const {
  std::vector<std::string> parts;
  for (std::uint8_t i = 0; i < 4; ++i)
    if (nea_mask & (1u << i)) parts.push_back("NEA" + std::to_string(i));
  for (std::uint8_t i = 0; i < 4; ++i)
    if (nia_mask & (1u << i)) parts.push_back("NIA" + std::to_string(i));
  return join(parts, "|");
}

namespace {
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t prf64(const Key& key, std::string_view label,
                    std::uint64_t context, std::uint64_t block) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto absorb = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
    h = mix64(h);
  };
  for (std::size_t i = 0; i < key.size(); i += 8) {
    std::uint64_t chunk = 0;
    for (int j = 0; j < 8; ++j)
      chunk |= static_cast<std::uint64_t>(key[i + j]) << (j * 8);
    absorb(chunk);
  }
  h ^= fnv1a(label);
  h = mix64(h);
  absorb(context);
  absorb(block);
  return h;
}
}  // namespace

Key kdf(const Key& key, std::string_view label, std::uint64_t context) {
  Key out{};
  for (std::uint64_t block = 0; block < 4; ++block) {
    std::uint64_t v = prf64(key, label, context, block);
    for (int j = 0; j < 8; ++j)
      out[block * 8 + j] = static_cast<std::uint8_t>(v >> (j * 8));
  }
  return out;
}

Key subscriber_key(std::string_view supi) {
  Key seed{};
  std::uint64_t h = fnv1a(supi);
  for (std::size_t i = 0; i < seed.size(); ++i) {
    h = mix64(h + i);
    seed[i] = static_cast<std::uint8_t>(h);
  }
  return kdf(seed, "K");
}

AuthVector generate_auth_vector(const Key& k, std::uint64_t rand) {
  AuthVector v;
  v.rand = rand;
  v.autn = prf64(k, "AUTN", rand, 0);
  v.xres = prf64(k, "RES", rand, 0);
  return v;
}

bool verify_autn(const Key& k, std::uint64_t rand, std::uint64_t autn) {
  return prf64(k, "AUTN", rand, 0) == autn;
}

std::uint64_t compute_res(const Key& k, std::uint64_t rand) {
  return prf64(k, "RES", rand, 0);
}

Bytes cipher(CipherAlg alg, const Key& key, std::uint32_t count,
             const Bytes& payload) {
  if (alg == CipherAlg::kNea0) return payload;  // null cipher: plaintext
  Bytes out = payload;
  std::uint64_t keystream = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0)
      keystream = prf64(key, "NEA", (static_cast<std::uint64_t>(
                                         static_cast<std::uint8_t>(alg))
                                     << 32) |
                                        count,
                        i / 8);
    out[i] ^= static_cast<std::uint8_t>(keystream >> ((i % 8) * 8));
  }
  return out;
}

Bytes decipher(CipherAlg alg, const Key& key, std::uint32_t count,
               const Bytes& payload) {
  return cipher(alg, key, count, payload);  // XOR stream is an involution
}

std::uint32_t compute_mac(IntegrityAlg alg, const Key& key,
                          std::uint32_t count, const Bytes& payload) {
  if (alg == IntegrityAlg::kNia0) return 0;  // null integrity: constant MAC
  std::uint64_t h = prf64(key, "NIA",
                          (static_cast<std::uint64_t>(
                               static_cast<std::uint8_t>(alg))
                           << 32) |
                              count,
                          fnv1a(payload));
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

bool verify_mac(IntegrityAlg alg, const Key& key, std::uint32_t count,
                const Bytes& payload, std::uint32_t mac) {
  return compute_mac(alg, key, count, payload) == mac;
}

CipherAlg AlgorithmPolicy::select_cipher(
    const SecurityCapabilities& caps) const {
  for (CipherAlg alg : cipher_priority)
    if (caps.supports(alg)) return alg;
  // NEA0 must always be supported per 33.501; fall back to it.
  return CipherAlg::kNea0;
}

IntegrityAlg AlgorithmPolicy::select_integrity(
    const SecurityCapabilities& caps) const {
  for (IntegrityAlg alg : integrity_priority)
    if (caps.supports(alg)) return alg;
  return IntegrityAlg::kNia0;
}

}  // namespace xsec::ran
