#include "ran/gnb.hpp"

#include "common/log.hpp"

namespace xsec::ran {

Gnb::Gnb(GnbConfig config, GnbHooks hooks, InterfaceTaps* taps)
    : config_(config),
      hooks_(std::move(hooks)),
      taps_(taps),
      rnti_alloc_(Rng(config.seed)) {}

void Gnb::tap_f1(F1apProcedure proc, const UeContext& ctx, const Bytes& rrc) {
  if (!taps_) return;
  F1apMessage f1;
  f1.procedure = proc;
  // Export the CU-side id so the collector can correlate F1AP and NGAP
  // telemetry for the same UE.
  f1.gnb_du_ue_id = static_cast<std::uint32_t>(ctx.ran_ue_ngap_id);
  f1.rnti = ctx.rnti;
  f1.cell = config_.cell;
  f1.rrc_container = rrc;
  taps_->emit_f1(hooks_.now(), encode_f1ap(f1));
}

void Gnb::on_uplink(const AirFrame& frame) {
  if (!frame.uplink) return;

  if (!frame.rnti) {
    // CCCH: must be an RRCSetupRequest from a UE without a C-RNTI yet.
    auto decoded = decode_rrc(frame.rrc_wire);
    if (!decoded || !std::holds_alternative<RrcSetupRequest>(decoded.value())) {
      XSEC_LOG_WARN("gnb", "non-setup message on CCCH, dropping");
      return;
    }
    const auto& setup = std::get<RrcSetupRequest>(decoded.value());
    if (setup.ue_identity.kind == InitialUeIdentity::Kind::kNg5gSTmsiPart1 &&
        blocked_tmsis_.count(setup.ue_identity.value)) {
      // RIC-installed replay blocklist (Blind DoS remediation).
      ++blocked_setups_;
      AirFrame reject;
      reject.uplink = false;
      reject.radio_tag = frame.radio_tag;
      reject.rrc_wire = encode_rrc(RrcMessage{RrcReject{1}});
      hooks_.send_downlink(std::move(reject));
      return;
    }
    if (isolated_) {
      // RIC-installed gNB isolation: no new admissions while in force.
      ++isolation_rejects_;
      AirFrame reject;
      reject.uplink = false;
      reject.radio_tag = frame.radio_tag;
      reject.rrc_wire = encode_rrc(RrcMessage{RrcReject{1}});
      hooks_.send_downlink(std::move(reject));
      return;
    }
    if (rate_limit_max_ > 0) {
      SimTime now = hooks_.now();
      while (!admit_times_.empty() &&
             now - admit_times_.front() >= rate_limit_window_)
        admit_times_.pop_front();
      if (admit_times_.size() >= rate_limit_max_) {
        // RIC-installed admission rate limit (signalling-storm mitigation).
        ++rate_limited_setups_;
        AirFrame reject;
        reject.uplink = false;
        reject.radio_tag = frame.radio_tag;
        reject.rrc_wire = encode_rrc(RrcMessage{RrcReject{1}});
        hooks_.send_downlink(std::move(reject));
        return;
      }
      admit_times_.push_back(now);
    }
    if (contexts_.size() >= config_.max_ue_contexts) {
      // Admission control full: this is the denial of service a BTS DoS
      // attack causes for legitimate UEs.
      ++rejected_;
      AirFrame reject;
      reject.uplink = false;
      reject.radio_tag = frame.radio_tag;
      reject.rrc_wire = encode_rrc(RrcMessage{RrcReject{1}});
      hooks_.send_downlink(std::move(reject));
      return;
    }
    auto rnti = rnti_alloc_.allocate();
    if (!rnti) {
      ++rejected_;
      return;
    }
    UeContext ctx;
    ctx.du_ue_id = next_du_ue_id_++;
    // NGAP id mirrors the DU id (offset into this gNB's id space) so
    // interface taps can correlate F1AP and NGAP traffic for the same UE.
    ctx.ran_ue_ngap_id = config_.ngap_id_base + ctx.du_ue_id;
    ctx.rnti = *rnti;
    ctx.radio_tag = frame.radio_tag;
    ctx.state = CtxState::kSetup;
    ctx.last_activity = hooks_.now();
    tap_f1(F1apProcedure::kInitialUlRrcMessageTransfer, ctx, frame.rrc_wire);
    auto [it, inserted] = contexts_.emplace(rnti->value, ctx);
    ++admitted_;
    arm_context_timer(ctx.ran_ue_ngap_id);
    send_rrc_dl(it->second, RrcMessage{RrcSetup{}});
    return;
  }

  auto it = contexts_.find(frame.rnti->value);
  if (it == contexts_.end()) {
    XSEC_LOG_DEBUG("gnb", "uplink for unknown RNTI ", frame.rnti->str());
    return;
  }
  UeContext& ctx = it->second;
  ctx.last_activity = hooks_.now();
  tap_f1(F1apProcedure::kUlRrcMessageTransfer, ctx, frame.rrc_wire);

  auto decoded = decode_rrc(frame.rrc_wire);
  if (!decoded) {
    XSEC_LOG_WARN("gnb", "undecodable uplink RRC from ", frame.rnti->str());
    return;
  }
  handle_rrc(ctx, decoded.value());
}

void Gnb::handle_rrc(UeContext& ctx, const RrcMessage& msg) {
  std::visit(
      [this, &ctx](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RrcSetupComplete>) {
          ctx.state = CtxState::kRegistering;
          forward_nas_ul(ctx, m.dedicated_nas, /*initial=*/true);
        } else if constexpr (std::is_same_v<T, UlInformationTransfer>) {
          forward_nas_ul(ctx, m.dedicated_nas, /*initial=*/false);
        } else if constexpr (std::is_same_v<T, RrcSecurityModeComplete>) {
          ctx.state = CtxState::kActive;
          send_rrc_dl(ctx, RrcMessage{UeCapabilityEnquiry{}});
        } else if constexpr (std::is_same_v<T, RrcSecurityModeFailure>) {
          release_context(ctx.ran_ue_ngap_id, /*notify_ue=*/true);
        } else if constexpr (std::is_same_v<T, UeCapabilityInformation>) {
          send_rrc_dl(ctx, RrcMessage{RrcReconfiguration{1}});
        } else if constexpr (std::is_same_v<T, RrcReconfigurationComplete>) {
          // Context fully configured; nothing further to do at the DU.
        } else if constexpr (std::is_same_v<T, MeasurementReport>) {
          // Activity already refreshed the inactivity timestamp.
        } else if constexpr (std::is_same_v<T, RrcReestablishmentRequest>) {
          // Reestablishment is not modelled; release instead.
          release_context(ctx.ran_ue_ngap_id, /*notify_ue=*/true);
        }
      },
      msg);
}

void Gnb::send_rrc_dl(UeContext& ctx, const RrcMessage& msg) {
  Bytes wire = encode_rrc(msg);
  tap_f1(F1apProcedure::kDlRrcMessageTransfer, ctx, wire);
  AirFrame frame;
  frame.rnti = ctx.rnti;
  frame.uplink = false;
  frame.radio_tag = ctx.radio_tag;
  frame.rrc_wire = std::move(wire);
  hooks_.send_downlink(std::move(frame));
}

void Gnb::forward_nas_ul(UeContext& ctx, const Bytes& nas_pdu, bool initial) {
  NgapMessage ngap;
  ngap.procedure = initial ? NgapProcedure::kInitialUeMessage
                           : NgapProcedure::kUplinkNasTransport;
  ngap.ran_ue_ngap_id = ctx.ran_ue_ngap_id;
  ngap.nas_pdu = nas_pdu;
  send_ngap(ngap);
}

void Gnb::send_ngap(const NgapMessage& msg) {
  Bytes wire = encode_ngap(msg);
  if (taps_) taps_->emit_ng(hooks_.now(), wire);
  hooks_.to_amf(std::move(wire));
}

void Gnb::on_ngap(const Bytes& ngap_wire) {
  if (taps_) taps_->emit_ng(hooks_.now(), ngap_wire);
  auto decoded = decode_ngap(ngap_wire);
  if (!decoded) {
    XSEC_LOG_WARN("gnb", "undecodable NGAP from AMF");
    return;
  }
  const NgapMessage& msg = decoded.value();

  if (msg.procedure == NgapProcedure::kPaging) {
    // Broadcast on the paging channel (radio_tag 0 = all endpoints). The
    // full ng-5G-S-TMSI goes out in the clear — the exposure Blind DoS
    // attackers harvest.
    Bytes wire = encode_rrc(RrcMessage{Paging{msg.paging_tmsi}});
    if (taps_) {
      F1apMessage f1;
      f1.procedure = F1apProcedure::kDlRrcMessageTransfer;
      f1.cell = config_.cell;
      f1.rrc_container = wire;
      taps_->emit_f1(hooks_.now(), encode_f1ap(f1));
    }
    AirFrame frame;
    frame.uplink = false;
    frame.radio_tag = 0;  // broadcast
    frame.rrc_wire = std::move(wire);
    hooks_.send_downlink(std::move(frame));
    return;
  }

  UeContext* ctx = find_by_ran_id(msg.ran_ue_ngap_id);
  if (!ctx) return;

  switch (msg.procedure) {
    case NgapProcedure::kDownlinkNasTransport: {
      send_rrc_dl(*ctx, RrcMessage{DlInformationTransfer{msg.nas_pdu}});
      break;
    }
    case NgapProcedure::kInitialContextSetup: {
      // AMF established NAS security; activate AS security.
      ctx->state = CtxState::kSecuring;
      SecurityCapabilities caps;  // capability IEs elided in this subset
      RrcSecurityModeCommand smc;
      smc.cipher = config_.rrc_policy.select_cipher(caps);
      smc.integrity = config_.rrc_policy.select_integrity(caps);
      send_rrc_dl(*ctx, RrcMessage{smc});
      break;
    }
    case NgapProcedure::kUeContextReleaseCommand: {
      std::uint64_t ran_id = msg.ran_ue_ngap_id;
      release_context(ran_id, /*notify_ue=*/true);
      NgapMessage complete;
      complete.procedure = NgapProcedure::kUeContextReleaseComplete;
      complete.ran_ue_ngap_id = ran_id;
      send_ngap(complete);
      break;
    }
    default:
      break;
  }
}

void Gnb::block_tmsi(std::uint64_t s_tmsi_part1) {
  blocked_tmsis_.insert(s_tmsi_part1 & ((1ULL << 39) - 1));
}

void Gnb::unblock_tmsi(std::uint64_t s_tmsi_part1) {
  blocked_tmsis_.erase(s_tmsi_part1 & ((1ULL << 39) - 1));
}

void Gnb::set_setup_rate_limit(std::uint32_t max_setups, SimDuration window) {
  if (max_setups == 0 || window.us <= 0) {
    clear_setup_rate_limit();
    return;
  }
  rate_limit_max_ = max_setups;
  rate_limit_window_ = window;
}

std::size_t Gnb::release_stale_contexts(SimDuration min_age) {
  std::vector<std::uint64_t> stale;
  SimTime now = hooks_.now();
  for (const auto& [rnti, ctx] : contexts_) {
    if (ctx.state == CtxState::kActive) continue;
    if (now - ctx.last_activity >= min_age) stale.push_back(ctx.ran_ue_ngap_id);
  }
  for (std::uint64_t ran_id : stale)
    release_context(ran_id, /*notify_ue=*/true);
  return stale.size();
}

bool Gnb::force_release(Rnti rnti) {
  auto it = contexts_.find(rnti.value);
  if (it == contexts_.end()) return false;
  release_context(it->second.ran_ue_ngap_id, /*notify_ue=*/true);
  return true;
}

void Gnb::release_context(std::uint64_t ran_ue_ngap_id, bool notify_ue) {
  UeContext* ctx = find_by_ran_id(ran_ue_ngap_id);
  if (!ctx) return;
  if (notify_ue) {
    send_rrc_dl(*ctx, RrcMessage{RrcRelease{}});
  }
  tap_f1(F1apProcedure::kUeContextRelease, *ctx, {});
  Rnti rnti = ctx->rnti;
  contexts_.erase(rnti.value);
  rnti_alloc_.release(rnti);
}

void Gnb::arm_context_timer(std::uint64_t ran_ue_ngap_id) {
  hooks_.schedule(config_.context_setup_timeout, [this, ran_ue_ngap_id] {
    UeContext* ctx = find_by_ran_id(ran_ue_ngap_id);
    if (!ctx) return;
    if (ctx->state == CtxState::kActive) {
      // Fully set up: switch to inactivity supervision.
      SimTime deadline = ctx->last_activity + config_.inactivity_timeout;
      if (hooks_.now() >= deadline) {
        release_context(ran_ue_ngap_id, /*notify_ue=*/true);
      } else {
        hooks_.schedule(deadline - hooks_.now(), [this, ran_ue_ngap_id] {
          UeContext* c = find_by_ran_id(ran_ue_ngap_id);
          if (!c) return;
          if (hooks_.now() - c->last_activity >= config_.inactivity_timeout)
            release_context(ran_ue_ngap_id, /*notify_ue=*/true);
          else
            arm_context_timer(ran_ue_ngap_id);
        });
      }
      return;
    }
    // Still mid-setup after the timeout: garbage-collect the context. This
    // is the defence the BTS DoS attack races against.
    XSEC_LOG_DEBUG("gnb", "GC incomplete context ran_id=", ran_ue_ngap_id);
    release_context(ran_ue_ngap_id, /*notify_ue=*/false);
  });
}

Gnb::UeContext* Gnb::find_by_ran_id(std::uint64_t ran_ue_ngap_id) {
  for (auto& [rnti, ctx] : contexts_)
    if (ctx.ran_ue_ngap_id == ran_ue_ngap_id) return &ctx;
  return nullptr;
}

}  // namespace xsec::ran
