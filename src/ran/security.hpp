// 5G security model (TS 33.501 subset): algorithm identifiers, UE security
// capabilities, a simplified 5G-AKA challenge/response, and the key
// derivations needed to make the Null-Cipher downgrade attack [37]
// observable in telemetry (MobiFlow's cipher_alg / integrity_alg fields).
//
// The cryptography is deliberately *simulated*: a keyed FNV-based PRF stands
// in for MILENAGE/HMAC-SHA256. What matters for the reproduction is the
// protocol structure (who derives what from what, and that a MAC verifies
// iff peer keys match), not cryptographic strength.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace xsec::ran {

/// 5G NR encryption algorithms. NEA0 is the null cipher — selecting it is
/// standard-compliant but leaves all traffic in plaintext, which is exactly
/// what the bidding-down attack in the paper forces.
enum class CipherAlg : std::uint8_t { kNea0 = 0, kNea1 = 1, kNea2 = 2, kNea3 = 3 };

/// 5G NR integrity algorithms; NIA0 is the null integrity algorithm.
enum class IntegrityAlg : std::uint8_t { kNia0 = 0, kNia1 = 1, kNia2 = 2, kNia3 = 3 };

std::string to_string(CipherAlg alg);
std::string to_string(IntegrityAlg alg);

/// Bitmask of algorithms a UE advertises in its RegistrationRequest.
struct SecurityCapabilities {
  std::uint8_t nea_mask = 0b0111;  // NEA0..NEA2 supported by default
  std::uint8_t nia_mask = 0b0110;  // NIA1..NIA2 (NIA0 only for emergency)

  auto operator<=>(const SecurityCapabilities&) const = default;

  bool supports(CipherAlg alg) const {
    return nea_mask & (1u << static_cast<std::uint8_t>(alg));
  }
  bool supports(IntegrityAlg alg) const {
    return nia_mask & (1u << static_cast<std::uint8_t>(alg));
  }
  std::string str() const;
};

/// 256-bit key material (K, K_AUSF, K_AMF, K_gNB, ...).
using Key = std::array<std::uint8_t, 32>;

/// Keyed PRF standing in for the 3GPP KDF (33.220 Annex B). Deterministic in
/// (key, label, context), with strong diffusion via iterated FNV/xorshift.
Key kdf(const Key& key, std::string_view label, std::uint64_t context = 0);

/// Derives the long-term subscriber key from a SUPI string (the testbed
/// provisioning step: both SIM and the AMF's subscriber DB hold this).
Key subscriber_key(std::string_view supi);

/// 5G-AKA authentication vector (simplified: RAND, AUTN, expected RES*).
struct AuthVector {
  std::uint64_t rand = 0;
  std::uint64_t autn = 0;   // network authentication token (MAC over rand)
  std::uint64_t xres = 0;   // expected challenge response
};

/// Home-network side: generates a fresh vector for a subscriber.
AuthVector generate_auth_vector(const Key& k, std::uint64_t rand);
/// UE side: verifies AUTN (detects rogue networks) and computes RES*.
bool verify_autn(const Key& k, std::uint64_t rand, std::uint64_t autn);
std::uint64_t compute_res(const Key& k, std::uint64_t rand);

/// NAS / RRC message protection. Ciphering is a keystream XOR; integrity is
/// a 32-bit MAC over (key, count, payload). NEA0/NIA0 are pass-through /
/// constant-MAC, mirroring the null algorithms.
Bytes cipher(CipherAlg alg, const Key& key, std::uint32_t count,
             const Bytes& payload);
Bytes decipher(CipherAlg alg, const Key& key, std::uint32_t count,
               const Bytes& payload);
std::uint32_t compute_mac(IntegrityAlg alg, const Key& key,
                          std::uint32_t count, const Bytes& payload);
bool verify_mac(IntegrityAlg alg, const Key& key, std::uint32_t count,
                const Bytes& payload, std::uint32_t mac);

/// Network-side algorithm selection: highest mutually supported algorithm
/// by the operator's priority list. A compromised/misconfigured network that
/// prefers null algorithms models the downgrade attack.
struct AlgorithmPolicy {
  std::vector<CipherAlg> cipher_priority{CipherAlg::kNea2, CipherAlg::kNea1,
                                         CipherAlg::kNea0};
  std::vector<IntegrityAlg> integrity_priority{
      IntegrityAlg::kNia2, IntegrityAlg::kNia1};

  CipherAlg select_cipher(const SecurityCapabilities& caps) const;
  IntegrityAlg select_integrity(const SecurityCapabilities& caps) const;
};

}  // namespace xsec::ran
