#include "ran/amf.hpp"

#include "common/log.hpp"
#include "ran/ue.hpp"  // deconceal_suci

namespace xsec::ran {

std::optional<Supi> SubscriberDb::find_by_msin(std::uint64_t msin,
                                               const Plmn& plmn) const {
  Supi candidate{plmn, msin};
  if (supis_.count(candidate)) return candidate;
  return std::nullopt;
}

Amf::Amf(AmfConfig config, AmfHooks hooks, SubscriberDb* db)
    : config_(config), hooks_(std::move(hooks)), db_(db), rng_(config.seed) {}

void Amf::on_ngap(const Bytes& ngap_wire) {
  auto decoded = decode_ngap(ngap_wire);
  if (!decoded) {
    XSEC_LOG_WARN("amf", "undecodable NGAP");
    return;
  }
  const NgapMessage& msg = decoded.value();

  switch (msg.procedure) {
    case NgapProcedure::kInitialUeMessage: {
      Session session;
      session.ran_ue_ngap_id = msg.ran_ue_ngap_id;
      session.amf_ue_ngap_id = next_amf_ue_id_++;
      auto [it, inserted] =
          sessions_.insert_or_assign(msg.ran_ue_ngap_id, session);
      auto nas = decode_nas(msg.nas_pdu);
      if (!nas) {
        XSEC_LOG_WARN("amf", "undecodable initial NAS");
        return;
      }
      handle_nas(it->second, nas.value());
      break;
    }
    case NgapProcedure::kUplinkNasTransport: {
      auto it = sessions_.find(msg.ran_ue_ngap_id);
      if (it == sessions_.end()) return;
      auto nas = decode_nas(msg.nas_pdu);
      if (!nas) {
        XSEC_LOG_WARN("amf", "undecodable NAS PDU");
        return;
      }
      handle_nas(it->second, nas.value());
      break;
    }
    case NgapProcedure::kUeContextReleaseComplete: {
      sessions_.erase(msg.ran_ue_ngap_id);
      break;
    }
    default:
      break;
  }
}

void Amf::handle_nas(Session& session, const NasMessage& msg) {
  std::visit(
      [this, &session](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RegistrationRequest>) {
          handle_registration_request(session, m);
        } else if constexpr (std::is_same_v<T, IdentityResponse>) {
          if (session.state != NasState::kAwaitingIdentity) return;
          session.supi = resolve_identity(m.identity);
          if (!session.supi) {
            send_nas(session,
                     NasMessage{RegistrationReject{MmCause::kIllegalUe}});
            release(session);
            return;
          }
          start_authentication(session);
        } else if constexpr (std::is_same_v<T, AuthenticationResponse>) {
          if (session.state != NasState::kAwaitingAuthResponse) return;
          if (m.res != session.expected_res) {
            ++auth_failures_;
            send_nas(session, NasMessage{AuthenticationReject{}});
            release(session);
            return;
          }
          // AKA succeeded: activate NAS security.
          session.state = NasState::kAwaitingSmcComplete;
          NasSecurityModeCommand smc;
          smc.cipher = config_.nas_policy.select_cipher(session.capabilities);
          smc.integrity =
              config_.nas_policy.select_integrity(session.capabilities);
          smc.replayed_capabilities = session.capabilities;
          send_nas(session, NasMessage{smc});
          arm_procedure_timer(session);
        } else if constexpr (std::is_same_v<T, AuthenticationFailure>) {
          ++auth_failures_;
          release(session);
        } else if constexpr (std::is_same_v<T, NasSecurityModeComplete>) {
          if (session.state != NasState::kAwaitingSmcComplete) return;
          session.state = NasState::kAwaitingRegComplete;
          // Trigger AS security at the gNB, then accept the registration.
          NgapMessage ctx_setup;
          ctx_setup.procedure = NgapProcedure::kInitialContextSetup;
          ctx_setup.ran_ue_ngap_id = session.ran_ue_ngap_id;
          ctx_setup.amf_ue_ngap_id = session.amf_ue_ngap_id;
          hooks_.to_gnb(encode_ngap(ctx_setup));

          RegistrationAccept accept;
          accept.guti = allocate_guti(*session.supi);
          send_nas(session, NasMessage{accept});
          arm_procedure_timer(session);
        } else if constexpr (std::is_same_v<T, NasSecurityModeReject>) {
          release(session);
        } else if constexpr (std::is_same_v<T, RegistrationComplete>) {
          if (session.state != NasState::kAwaitingRegComplete) return;
          session.state = NasState::kRegistered;
          ++session.generation;  // cancel the procedure timer
          ++registered_;
        } else if constexpr (std::is_same_v<T, DeregistrationRequestUe>) {
          send_nas(session, NasMessage{DeregistrationAcceptNw{}});
          release(session);
        } else if constexpr (std::is_same_v<T, ServiceRequest>) {
          // Service requests ride on an existing registration.
          if (session.state == NasState::kRegistered)
            send_nas(session, NasMessage{ServiceAccept{}});
          else
            send_nas(session,
                     NasMessage{ServiceReject{MmCause::kIllegalUe}});
        }
      },
      msg);
}

void Amf::handle_registration_request(Session& session,
                                      const RegistrationRequest& msg) {
  session.capabilities = msg.capabilities;
  session.supi = resolve_identity(msg.identity);
  if (!session.supi) {
    if (msg.identity.kind == MobileIdentity::Kind::kGuti) {
      // Unknown GUTI (e.g., AMF restart): ask for the permanent identity.
      // This benign IdentityRequest flow is why identity requests alone are
      // ambiguous evidence of an attack (paper §5, Limitations).
      session.state = NasState::kAwaitingIdentity;
      send_nas(session, NasMessage{IdentityRequest{IdentityType::kSuci}});
      arm_procedure_timer(session);
      return;
    }
    send_nas(session, NasMessage{RegistrationReject{MmCause::kIllegalUe}});
    release(session);
    return;
  }
  start_authentication(session);
}

void Amf::start_authentication(Session& session) {
  Key k = subscriber_key(session.supi->str());
  std::uint64_t rand = rng_.uniform_u64(1, Rng::max());
  AuthVector vec = generate_auth_vector(k, rand);
  session.auth_rand = rand;
  session.expected_res = vec.xres;
  session.state = NasState::kAwaitingAuthResponse;
  AuthenticationRequest req;
  req.ng_ksi = 0;
  req.rand = vec.rand;
  req.autn = vec.autn;
  send_nas(session, NasMessage{req});
  arm_procedure_timer(session);
}

void Amf::send_nas(Session& session, const NasMessage& msg) {
  NgapMessage ngap;
  ngap.procedure = NgapProcedure::kDownlinkNasTransport;
  ngap.ran_ue_ngap_id = session.ran_ue_ngap_id;
  ngap.amf_ue_ngap_id = session.amf_ue_ngap_id;
  ngap.nas_pdu = encode_nas(msg);
  hooks_.to_gnb(encode_ngap(ngap));
}

void Amf::release(Session& session) {
  NgapMessage cmd;
  cmd.procedure = NgapProcedure::kUeContextReleaseCommand;
  cmd.ran_ue_ngap_id = session.ran_ue_ngap_id;
  cmd.amf_ue_ngap_id = session.amf_ue_ngap_id;
  hooks_.to_gnb(encode_ngap(cmd));
  ++session.generation;
  // The session map entry is erased when ReleaseComplete arrives.
}

void Amf::arm_procedure_timer(Session& session) {
  std::uint64_t ran_id = session.ran_ue_ngap_id;
  std::uint64_t generation = ++session.generation;
  hooks_.schedule(config_.procedure_timeout, [this, ran_id, generation] {
    auto it = sessions_.find(ran_id);
    if (it == sessions_.end()) return;
    if (it->second.generation != generation) return;
    XSEC_LOG_DEBUG("amf", "procedure timeout for ran_id=", ran_id);
    release(it->second);
  });
}

std::optional<Supi> Amf::resolve_identity(const MobileIdentity& identity) {
  switch (identity.kind) {
    case MobileIdentity::Kind::kSuci: {
      std::uint64_t msin = deconceal_suci(*identity.suci);
      return db_->find_by_msin(msin, identity.suci->plmn);
    }
    case MobileIdentity::Kind::kGuti: {
      auto it = guti_map_.find(identity.guti->s_tmsi.packed());
      if (it == guti_map_.end()) return std::nullopt;
      return it->second;
    }
    case MobileIdentity::Kind::kSupiPlain:
      // Plaintext SUPI: accepted, but this is the red flag MobiFlow records.
      if (db_->is_provisioned(*identity.supi)) return identity.supi;
      return std::nullopt;
    case MobileIdentity::Kind::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

bool Amf::page(const Supi& supi) {
  // Find the most recently allocated GUTI for this subscriber.
  std::uint64_t packed = 0;
  for (const auto& [tmsi, owner] : guti_map_)
    if (owner == supi) packed = tmsi;
  if (packed == 0) return false;
  NgapMessage paging;
  paging.procedure = NgapProcedure::kPaging;
  paging.paging_tmsi = packed;
  hooks_.to_gnb(encode_ngap(paging));
  ++pages_sent_;
  return true;
}

Guti Amf::allocate_guti(const Supi& supi) {
  Guti guti;
  guti.plmn = config_.plmn;
  guti.amf_region = 1;
  guti.s_tmsi.amf_set_id = 1;
  guti.s_tmsi.amf_pointer = 0;
  guti.s_tmsi.tmsi = static_cast<std::uint32_t>(rng_.uniform_u64(1, 0xfffffffe));
  guti_map_[guti.s_tmsi.packed()] = supi;
  return guti;
}

}  // namespace xsec::ran
