// UE (User Equipment) protocol state machine.
//
// Implements the benign 5G SA attach flow end-to-end: RRC setup ->
// registration -> 5G-AKA authentication -> NAS security mode -> RRC
// security mode -> capability exchange -> reconfiguration -> registration
// accept -> activity -> release/deregistration. Attack UEs (src/attacks/)
// override the protected virtual handlers to inject malicious logic, the
// same way the paper inserts malicious logic into OAI's UE stack.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "ran/codec.hpp"
#include "ran/interfaces.hpp"
#include "ran/nas.hpp"
#include "ran/rrc.hpp"
#include "ran/security.hpp"

namespace xsec::ran {

/// Computes a null-scheme or protected SUCI for a subscriber. The protected
/// scheme hides the MSIN under the home-network key with a caller-supplied
/// nonce; the null scheme IS the plaintext MSIN (what SUCI-catchers reap).
Suci make_suci(const Supi& supi, std::uint32_t nonce, bool null_scheme = false);
/// Home-network side: recovers the MSIN from a protected SUCI.
std::uint64_t deconceal_suci(const Suci& suci);

struct UeConfig {
  Supi supi;
  SecurityCapabilities capabilities;
  EstablishmentCause establishment_cause = EstablishmentCause::kMoSignalling;
  /// Stored GUTI from a previous registration (drives S-TMSI reuse and
  /// GUTI-based RegistrationRequest, both benign variation sources).
  std::optional<Guti> stored_guti;
  /// Number of MeasurementReports sent while registered.
  int activity_reports = 2;
  SimDuration activity_interval = SimDuration::from_ms(40);
  /// If true the UE ends the session with a DeregistrationRequest;
  /// otherwise it idles until the network releases it.
  bool deregister_at_end = true;
  /// T300-style RRC setup retransmission (models radio loss; the paper
  /// names RRC retransmissions as a false-positive source).
  SimDuration setup_retry_timeout = SimDuration::from_ms(60);
  int max_setup_attempts = 3;
  /// On RRCReject the UE waits the network's wait-time and tries again
  /// (38.331 §5.3.15), up to this many times.
  int max_reject_retries = 2;
  /// Exploitable identity-disclosure behaviour: pre-security identity
  /// requests are answered with a null-scheme (plaintext) SUCI, mirroring
  /// the commercial UEs attacked in [32, 40]. Default on, as in the paper's
  /// victim devices.
  bool identity_disclosure_bug = true;
  /// Forces null-scheme SUCI in the initial RegistrationRequest (used by
  /// the uplink identity-extraction attack's downgraded victim).
  bool force_null_scheme_suci = false;
  /// Compliance bug from [37]: skip the 24.501 §5.4.2.3 check that the
  /// capabilities replayed in SecurityModeCommand match what the UE sent —
  /// the hole the null-cipher bidding-down attack needs.
  bool accept_capability_mismatch = false;
  /// Per-UE deterministic seed for nonces and jitter.
  std::uint64_t seed = 1;
  /// Processing delay before each reply (varies per device profile).
  SimDuration processing_delay = SimDuration::from_ms(2);
};

struct UeHooks {
  std::function<void(AirFrame)> send;
  std::function<SimTime()> now;
  std::function<void(SimDuration, std::function<void()>)> schedule;
  /// Called once when the session reaches a terminal state.
  std::function<void()> on_session_end;
};

class Ue {
 public:
  enum class RrcState { kIdle, kSetupRequested, kConnected };
  enum class MmState {
    kDeregistered,
    kRegistrationInitiated,
    kAuthenticated,
    kSecured,
    kRegistered,
  };

  Ue(UeConfig config, UeHooks hooks);
  virtual ~Ue() = default;

  Ue(const Ue&) = delete;
  Ue& operator=(const Ue&) = delete;

  /// Starts the attach procedure.
  virtual void power_on();
  /// Delivers a downlink frame from the radio.
  void receive(const AirFrame& frame);

  RrcState rrc_state() const { return rrc_state_; }
  MmState mm_state() const { return mm_state_; }
  std::optional<Rnti> rnti() const { return rnti_; }
  /// Every C-RNTI this UE was ever assigned (ground-truth labeling).
  const std::vector<Rnti>& rnti_history() const { return rnti_history_; }
  std::optional<Guti> guti() const { return config_.stored_guti; }
  const UeConfig& config() const { return config_; }
  bool session_ended() const { return session_ended_; }
  /// Algorithms the network selected for this UE (telemetry ground truth).
  std::optional<CipherAlg> selected_cipher() const { return nas_cipher_; }
  std::optional<IntegrityAlg> selected_integrity() const {
    return nas_integrity_;
  }

 protected:
  // Overridable per-message behaviour (attack hook points).
  virtual void handle_rrc_setup(const RrcSetup& msg);
  virtual void handle_rrc_reject(const RrcReject& msg);
  virtual void handle_rrc_release(const RrcRelease& msg);
  virtual void handle_rrc_security_mode_command(
      const RrcSecurityModeCommand& msg);
  virtual void handle_capability_enquiry(const UeCapabilityEnquiry& msg);
  virtual void handle_reconfiguration(const RrcReconfiguration& msg);
  virtual void handle_nas(const NasMessage& msg);
  virtual void handle_authentication_request(const AuthenticationRequest& msg);
  virtual void handle_nas_security_mode_command(
      const NasSecurityModeCommand& msg);
  virtual void handle_identity_request(const IdentityRequest& msg);
  virtual void handle_registration_accept(const RegistrationAccept& msg);
  virtual void handle_registration_reject(const RegistrationReject& msg);

  /// Builds the initial RegistrationRequest (fresh SUCI or stored GUTI).
  virtual RegistrationRequest build_registration_request();
  /// Activity phase once registered; default sends measurement reports then
  /// ends the session.
  virtual void begin_activity();

  void send_rrc(const RrcMessage& msg);
  void send_nas(const NasMessage& msg);
  void send_setup_request();
  void end_session();

  UeConfig config_;
  UeHooks hooks_;
  Rng rng_;

  RrcState rrc_state_ = RrcState::kIdle;
  MmState mm_state_ = MmState::kDeregistered;
  std::optional<Rnti> rnti_;
  std::vector<Rnti> rnti_history_;
  Key k_;           // long-term subscriber key
  Key k_amf_{};     // derived after AKA
  std::optional<CipherAlg> nas_cipher_;
  std::optional<IntegrityAlg> nas_integrity_;
  std::optional<CipherAlg> rrc_cipher_;
  std::optional<IntegrityAlg> rrc_integrity_;
  bool nas_security_active_ = false;
  int setup_attempts_ = 0;
  int reject_retries_ = 0;
  int reports_sent_ = 0;
  bool session_ended_ = false;
  std::uint64_t generation_ = 0;  // invalidates stale timer callbacks
};

}  // namespace xsec::ran
