// Cellular identifiers (3GPP TS 23.003 subset).
//
// These are the identifier telemetry fields of MobiFlow (paper Table 1):
// RNTI, S-TMSI, and SUPI. Strong types prevent the classic bug of passing a
// TMSI where an RNTI is expected — both are "just integers" on the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"

namespace xsec::ran {

/// Radio Network Temporary Identifier — L2 identity assigned by the gNB at
/// RACH/RRC-setup time. 16-bit; the C-RNTI range excludes reserved values.
struct Rnti {
  std::uint16_t value = 0;

  auto operator<=>(const Rnti&) const = default;

  static constexpr std::uint16_t kMinCRnti = 0x0001;
  static constexpr std::uint16_t kMaxCRnti = 0xFFEF;

  std::string str() const;
};

/// 5G-S-TMSI: AMF Set ID (10b) | AMF Pointer (6b) | 5G-TMSI (32b).
struct STmsi {
  std::uint16_t amf_set_id = 0;  // 10 bits used
  std::uint8_t amf_pointer = 0;  // 6 bits used
  std::uint32_t tmsi = 0;

  auto operator<=>(const STmsi&) const = default;

  std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(amf_set_id & 0x3ff) << 38) |
           (static_cast<std::uint64_t>(amf_pointer & 0x3f) << 32) | tmsi;
  }
  static STmsi from_packed(std::uint64_t packed) {
    return STmsi{static_cast<std::uint16_t>((packed >> 38) & 0x3ff),
                 static_cast<std::uint8_t>((packed >> 32) & 0x3f),
                 static_cast<std::uint32_t>(packed & 0xffffffff)};
  }
  std::string str() const;
};

/// Public Land Mobile Network identity (MCC + MNC).
struct Plmn {
  std::uint16_t mcc = 1;   // 3 digits
  std::uint16_t mnc = 1;   // 2-3 digits

  auto operator<=>(const Plmn&) const = default;

  std::string str() const;
  /// Test-network PLMN 001/01 used throughout the testbed (as OAI does).
  static Plmn test_network() { return Plmn{1, 1}; }
};

/// Subscription Permanent Identifier, IMSI-based: PLMN + 10-digit MSIN.
struct Supi {
  Plmn plmn;
  std::uint64_t msin = 0;

  auto operator<=>(const Supi&) const = default;

  std::string str() const;  // "imsi-00101xxxxxxxxxx"
};

/// Subscription Concealed Identifier. The real SUCI conceals the MSIN under
/// the home-network public key (ECIES); we model concealment as an opaque
/// value that only the AMF (via SubscriberDb) can invert, which preserves
/// the property the attacks care about: a SUCI cannot be linked to a SUPI
/// by an eavesdropper, but a plaintext SUPI/IMSI disclosure can.
struct Suci {
  Plmn plmn;
  std::uint64_t concealed = 0;  // opaque ciphertext of the MSIN
  std::uint8_t protection_scheme = 1;  // 0 = null scheme (plaintext!)

  auto operator<=>(const Suci&) const = default;

  bool is_null_scheme() const { return protection_scheme == 0; }
  std::string str() const;
};

/// 5G-GUTI: PLMN + AMF Region + S-TMSI.
struct Guti {
  Plmn plmn;
  std::uint8_t amf_region = 1;
  STmsi s_tmsi;

  auto operator<=>(const Guti&) const = default;

  std::string str() const;
};

/// NR Cell Global Identity (gNB id + cell).
struct CellId {
  std::uint32_t gnb_id = 1;
  std::uint16_t cell = 1;

  auto operator<=>(const CellId&) const = default;

  std::string str() const;
};

/// Allocates unique RNTIs within a cell and recycles released ones.
class RntiAllocator {
 public:
  explicit RntiAllocator(Rng rng) : rng_(rng) {}

  /// Draws an unused C-RNTI uniformly at random (as OAI does); returns
  /// nullopt when the cell is exhausted.
  std::optional<Rnti> allocate();
  void release(Rnti rnti);
  std::size_t in_use() const { return used_.size(); }

 private:
  Rng rng_;
  std::vector<std::uint16_t> used_;  // sorted
};

}  // namespace xsec::ran
