#include "ran/codec.hpp"

namespace xsec::ran {

namespace {

// Variant index is the wire type tag. Adding a message type appends to the
// variant, so existing tags stay stable (the trace-file format depends on
// this).

void encode_plmn(ByteWriter& w, const Plmn& plmn) {
  w.u16(plmn.mcc);
  w.u16(plmn.mnc);
}

Result<Plmn> decode_plmn(ByteReader& r) {
  auto mcc = r.u16();
  if (!mcc) return mcc.error();
  auto mnc = r.u16();
  if (!mnc) return mnc.error();
  return Plmn{mcc.value(), mnc.value()};
}

void encode_stmsi(ByteWriter& w, const STmsi& s) { w.u64(s.packed()); }

Result<STmsi> decode_stmsi(ByteReader& r) {
  auto packed = r.u64();
  if (!packed) return packed.error();
  return STmsi::from_packed(packed.value());
}

void encode_caps(ByteWriter& w, const SecurityCapabilities& caps) {
  w.u8(caps.nea_mask);
  w.u8(caps.nia_mask);
}

Result<SecurityCapabilities> decode_caps(ByteReader& r) {
  auto nea = r.u8();
  if (!nea) return nea.error();
  auto nia = r.u8();
  if (!nia) return nia.error();
  return SecurityCapabilities{nea.value(), nia.value()};
}

void encode_bytes(ByteWriter& w, const Bytes& b) {
  w.u32(static_cast<std::uint32_t>(b.size()));
  w.raw(b);
}

Result<Bytes> decode_bytes(ByteReader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  return r.raw(n.value());
}

Result<CipherAlg> decode_cipher(ByteReader& r) {
  auto v = r.u8();
  if (!v) return v.error();
  if (v.value() > 3) return Error::make("malformed", "cipher alg out of range");
  return static_cast<CipherAlg>(v.value());
}

Result<IntegrityAlg> decode_integrity(ByteReader& r) {
  auto v = r.u8();
  if (!v) return v.error();
  if (v.value() > 3)
    return Error::make("malformed", "integrity alg out of range");
  return static_cast<IntegrityAlg>(v.value());
}

}  // namespace

void encode_guti(ByteWriter& w, const Guti& guti) {
  encode_plmn(w, guti.plmn);
  w.u8(guti.amf_region);
  encode_stmsi(w, guti.s_tmsi);
}

Result<Guti> decode_guti(ByteReader& r) {
  auto plmn = decode_plmn(r);
  if (!plmn) return plmn.error();
  auto region = r.u8();
  if (!region) return region.error();
  auto stmsi = decode_stmsi(r);
  if (!stmsi) return stmsi.error();
  return Guti{plmn.value(), region.value(), stmsi.value()};
}

void encode_mobile_identity(ByteWriter& w, const MobileIdentity& id) {
  w.u8(static_cast<std::uint8_t>(id.kind));
  switch (id.kind) {
    case MobileIdentity::Kind::kSuci:
      encode_plmn(w, id.suci->plmn);
      w.u64(id.suci->concealed);
      w.u8(id.suci->protection_scheme);
      break;
    case MobileIdentity::Kind::kGuti:
      encode_guti(w, *id.guti);
      break;
    case MobileIdentity::Kind::kSupiPlain:
      encode_plmn(w, id.supi->plmn);
      w.u64(id.supi->msin);
      break;
    case MobileIdentity::Kind::kNone:
      break;
  }
}

Result<MobileIdentity> decode_mobile_identity(ByteReader& r) {
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (kind.value() > 3)
    return Error::make("malformed", "mobile identity kind out of range");
  MobileIdentity id;
  id.kind = static_cast<MobileIdentity::Kind>(kind.value());
  switch (id.kind) {
    case MobileIdentity::Kind::kSuci: {
      auto plmn = decode_plmn(r);
      if (!plmn) return plmn.error();
      auto concealed = r.u64();
      if (!concealed) return concealed.error();
      auto scheme = r.u8();
      if (!scheme) return scheme.error();
      id.suci = Suci{plmn.value(), concealed.value(), scheme.value()};
      break;
    }
    case MobileIdentity::Kind::kGuti: {
      auto guti = decode_guti(r);
      if (!guti) return guti.error();
      id.guti = guti.value();
      break;
    }
    case MobileIdentity::Kind::kSupiPlain: {
      auto plmn = decode_plmn(r);
      if (!plmn) return plmn.error();
      auto msin = r.u64();
      if (!msin) return msin.error();
      id.supi = Supi{plmn.value(), msin.value()};
      break;
    }
    case MobileIdentity::Kind::kNone:
      break;
  }
  return id;
}

// --- RRC ---------------------------------------------------------------

Bytes encode_rrc(const RrcMessage& msg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(msg.index()));
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RrcSetupRequest>) {
          w.u8(static_cast<std::uint8_t>(m.ue_identity.kind));
          w.u64(m.ue_identity.value);
          w.u8(static_cast<std::uint8_t>(m.cause));
        } else if constexpr (std::is_same_v<T, RrcSetupComplete>) {
          encode_plmn(w, m.selected_plmn);
          encode_bytes(w, m.dedicated_nas);
          w.boolean(m.s_tmsi.has_value());
          if (m.s_tmsi) encode_stmsi(w, *m.s_tmsi);
        } else if constexpr (std::is_same_v<T, RrcSecurityModeFailure>) {
          w.u8(m.cause);
        } else if constexpr (std::is_same_v<T, UeCapabilityInformation>) {
          w.str(m.rat_capabilities);
          w.u8(m.num_bands);
        } else if constexpr (std::is_same_v<T, UlInformationTransfer> ||
                             std::is_same_v<T, DlInformationTransfer>) {
          encode_bytes(w, m.dedicated_nas);
        } else if constexpr (std::is_same_v<T, MeasurementReport>) {
          w.u8(static_cast<std::uint8_t>(m.rsrp_dbm));
          w.u8(static_cast<std::uint8_t>(m.rsrq_db));
        } else if constexpr (std::is_same_v<T, RrcReestablishmentRequest>) {
          w.u16(m.old_rnti.value);
          w.u16(m.phys_cell_id);
          w.u8(m.cause);
        } else if constexpr (std::is_same_v<T, RrcReject>) {
          w.u8(m.wait_time_s);
        } else if constexpr (std::is_same_v<T, RrcSecurityModeCommand>) {
          w.u8(static_cast<std::uint8_t>(m.cipher));
          w.u8(static_cast<std::uint8_t>(m.integrity));
        } else if constexpr (std::is_same_v<T, RrcReconfiguration>) {
          w.u8(m.transaction_id);
        } else if constexpr (std::is_same_v<T, RrcRelease>) {
          w.u8(static_cast<std::uint8_t>(m.cause));
          w.boolean(m.suspend);
        } else if constexpr (std::is_same_v<T, Paging>) {
          w.u64(m.s_tmsi_packed);
        }
        // RrcSetup, RrcSecurityModeComplete, RrcReconfigurationComplete,
        // UeCapabilityEnquiry carry no body fields in this subset.
      },
      msg);
  return w.take();
}

Result<RrcMessage> decode_rrc(const Bytes& wire) {
  ByteReader r(wire);
  auto tag = r.u8();
  if (!tag) return tag.error();
  switch (tag.value()) {
    case 0: {  // RrcSetupRequest
      auto kind = r.u8();
      if (!kind) return kind.error();
      if (kind.value() > 1)
        return Error::make("malformed", "initial UE identity kind");
      auto value = r.u64();
      if (!value) return value.error();
      auto cause = r.u8();
      if (!cause) return cause.error();
      if (cause.value() > 9)
        return Error::make("malformed", "establishment cause out of range");
      RrcSetupRequest m;
      m.ue_identity.kind =
          static_cast<InitialUeIdentity::Kind>(kind.value());
      m.ue_identity.value = value.value();
      m.cause = static_cast<EstablishmentCause>(cause.value());
      return RrcMessage{m};
    }
    case 1: {  // RrcSetupComplete
      auto plmn = decode_plmn(r);
      if (!plmn) return plmn.error();
      auto nas = decode_bytes(r);
      if (!nas) return nas.error();
      auto has_stmsi = r.boolean();
      if (!has_stmsi) return has_stmsi.error();
      RrcSetupComplete m;
      m.selected_plmn = plmn.value();
      m.dedicated_nas = nas.value();
      if (has_stmsi.value()) {
        auto stmsi = decode_stmsi(r);
        if (!stmsi) return stmsi.error();
        m.s_tmsi = stmsi.value();
      }
      return RrcMessage{m};
    }
    case 2:
      return RrcMessage{RrcSecurityModeComplete{}};
    case 3: {
      auto cause = r.u8();
      if (!cause) return cause.error();
      return RrcMessage{RrcSecurityModeFailure{cause.value()}};
    }
    case 4: {
      auto caps = r.str();
      if (!caps) return caps.error();
      auto bands = r.u8();
      if (!bands) return bands.error();
      return RrcMessage{UeCapabilityInformation{caps.value(), bands.value()}};
    }
    case 5:
      return RrcMessage{RrcReconfigurationComplete{}};
    case 6: {
      auto nas = decode_bytes(r);
      if (!nas) return nas.error();
      return RrcMessage{UlInformationTransfer{nas.value()}};
    }
    case 7: {
      auto rsrp = r.u8();
      if (!rsrp) return rsrp.error();
      auto rsrq = r.u8();
      if (!rsrq) return rsrq.error();
      return RrcMessage{
          MeasurementReport{static_cast<std::int8_t>(rsrp.value()),
                            static_cast<std::int8_t>(rsrq.value())}};
    }
    case 8: {
      auto rnti = r.u16();
      if (!rnti) return rnti.error();
      auto pci = r.u16();
      if (!pci) return pci.error();
      auto cause = r.u8();
      if (!cause) return cause.error();
      return RrcMessage{RrcReestablishmentRequest{Rnti{rnti.value()},
                                                  pci.value(), cause.value()}};
    }
    case 9:
      return RrcMessage{RrcSetup{}};
    case 10: {
      auto wait = r.u8();
      if (!wait) return wait.error();
      return RrcMessage{RrcReject{wait.value()}};
    }
    case 11: {
      auto cipher = decode_cipher(r);
      if (!cipher) return cipher.error();
      auto integrity = decode_integrity(r);
      if (!integrity) return integrity.error();
      return RrcMessage{
          RrcSecurityModeCommand{cipher.value(), integrity.value()}};
    }
    case 12:
      return RrcMessage{UeCapabilityEnquiry{}};
    case 13: {
      auto tid = r.u8();
      if (!tid) return tid.error();
      return RrcMessage{RrcReconfiguration{tid.value()}};
    }
    case 14: {
      auto nas = decode_bytes(r);
      if (!nas) return nas.error();
      return RrcMessage{DlInformationTransfer{nas.value()}};
    }
    case 15: {
      auto cause = r.u8();
      if (!cause) return cause.error();
      if (cause.value() > 1)
        return Error::make("malformed", "release cause out of range");
      auto suspend = r.boolean();
      if (!suspend) return suspend.error();
      return RrcMessage{
          RrcRelease{static_cast<RrcRelease::Cause>(cause.value()),
                     suspend.value()}};
    }
    case 16: {
      auto tmsi = r.u64();
      if (!tmsi) return tmsi.error();
      return RrcMessage{Paging{tmsi.value()}};
    }
    default:
      return Error::make("malformed",
                         "unknown RRC tag " + std::to_string(tag.value()));
  }
}

// --- NAS ---------------------------------------------------------------

Bytes encode_nas(const NasMessage& msg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(msg.index()));
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RegistrationRequest>) {
          w.u8(static_cast<std::uint8_t>(m.type));
          w.u8(m.ng_ksi);
          encode_mobile_identity(w, m.identity);
          encode_caps(w, m.capabilities);
        } else if constexpr (std::is_same_v<T, AuthenticationResponse>) {
          w.u64(m.res);
        } else if constexpr (std::is_same_v<T, AuthenticationFailure>) {
          w.u8(static_cast<std::uint8_t>(m.cause));
        } else if constexpr (std::is_same_v<T, NasSecurityModeComplete>) {
          w.boolean(m.imeisv_supi.has_value());
          if (m.imeisv_supi) {
            w.u16(m.imeisv_supi->plmn.mcc);
            w.u16(m.imeisv_supi->plmn.mnc);
            w.u64(m.imeisv_supi->msin);
          }
        } else if constexpr (std::is_same_v<T, NasSecurityModeReject>) {
          w.u8(static_cast<std::uint8_t>(m.cause));
        } else if constexpr (std::is_same_v<T, IdentityResponse>) {
          encode_mobile_identity(w, m.identity);
        } else if constexpr (std::is_same_v<T, ServiceRequest>) {
          w.u8(m.service_type);
          w.boolean(m.s_tmsi.has_value());
          if (m.s_tmsi) encode_stmsi(w, *m.s_tmsi);
        } else if constexpr (std::is_same_v<T, DeregistrationRequestUe>) {
          w.boolean(m.switch_off);
        } else if constexpr (std::is_same_v<T, AuthenticationRequest>) {
          w.u8(m.ng_ksi);
          w.u64(m.rand);
          w.u64(m.autn);
        } else if constexpr (std::is_same_v<T, NasSecurityModeCommand>) {
          w.u8(static_cast<std::uint8_t>(m.cipher));
          w.u8(static_cast<std::uint8_t>(m.integrity));
          encode_caps(w, m.replayed_capabilities);
        } else if constexpr (std::is_same_v<T, IdentityRequest>) {
          w.u8(static_cast<std::uint8_t>(m.type));
        } else if constexpr (std::is_same_v<T, RegistrationAccept>) {
          encode_guti(w, m.guti);
          w.u16(m.t3512_min);
        } else if constexpr (std::is_same_v<T, RegistrationReject>) {
          w.u8(static_cast<std::uint8_t>(m.cause));
        } else if constexpr (std::is_same_v<T, ServiceReject>) {
          w.u8(static_cast<std::uint8_t>(m.cause));
        } else if constexpr (std::is_same_v<T, ConfigurationUpdateCommand>) {
          w.boolean(m.new_guti.has_value());
          if (m.new_guti) encode_guti(w, *m.new_guti);
        }
        // Messages without body fields: RegistrationComplete,
        // AuthenticationReject, ServiceAccept, DeregistrationAcceptNw.
      },
      msg);
  return w.take();
}

namespace {
Result<MmCause> decode_cause(ByteReader& r) {
  auto v = r.u8();
  if (!v) return v.error();
  return static_cast<MmCause>(v.value());
}
}  // namespace

Result<NasMessage> decode_nas(const Bytes& wire) {
  ByteReader r(wire);
  auto tag = r.u8();
  if (!tag) return tag.error();
  switch (tag.value()) {
    case 0: {  // RegistrationRequest
      auto type = r.u8();
      if (!type) return type.error();
      if (type.value() < 1 || type.value() > 4)
        return Error::make("malformed", "registration type out of range");
      auto ksi = r.u8();
      if (!ksi) return ksi.error();
      auto id = decode_mobile_identity(r);
      if (!id) return id.error();
      auto caps = decode_caps(r);
      if (!caps) return caps.error();
      return NasMessage{
          RegistrationRequest{static_cast<RegistrationType>(type.value()),
                              ksi.value(), id.value(), caps.value()}};
    }
    case 1: {
      auto res = r.u64();
      if (!res) return res.error();
      return NasMessage{AuthenticationResponse{res.value()}};
    }
    case 2: {
      auto cause = decode_cause(r);
      if (!cause) return cause.error();
      return NasMessage{AuthenticationFailure{cause.value()}};
    }
    case 3: {
      auto has = r.boolean();
      if (!has) return has.error();
      NasSecurityModeComplete m;
      if (has.value()) {
        auto mcc = r.u16();
        if (!mcc) return mcc.error();
        auto mnc = r.u16();
        if (!mnc) return mnc.error();
        auto msin = r.u64();
        if (!msin) return msin.error();
        m.imeisv_supi = Supi{Plmn{mcc.value(), mnc.value()}, msin.value()};
      }
      return NasMessage{m};
    }
    case 4: {
      auto cause = decode_cause(r);
      if (!cause) return cause.error();
      return NasMessage{NasSecurityModeReject{cause.value()}};
    }
    case 5: {
      auto id = decode_mobile_identity(r);
      if (!id) return id.error();
      return NasMessage{IdentityResponse{id.value()}};
    }
    case 6:
      return NasMessage{RegistrationComplete{}};
    case 7: {
      auto type = r.u8();
      if (!type) return type.error();
      auto has = r.boolean();
      if (!has) return has.error();
      ServiceRequest m;
      m.service_type = type.value();
      if (has.value()) {
        auto stmsi = decode_stmsi(r);
        if (!stmsi) return stmsi.error();
        m.s_tmsi = stmsi.value();
      }
      return NasMessage{m};
    }
    case 8: {
      auto off = r.boolean();
      if (!off) return off.error();
      return NasMessage{DeregistrationRequestUe{off.value()}};
    }
    case 9: {
      auto ksi = r.u8();
      if (!ksi) return ksi.error();
      auto rand = r.u64();
      if (!rand) return rand.error();
      auto autn = r.u64();
      if (!autn) return autn.error();
      return NasMessage{
          AuthenticationRequest{ksi.value(), rand.value(), autn.value()}};
    }
    case 10:
      return NasMessage{AuthenticationReject{}};
    case 11: {
      auto cipher = r.u8();
      if (!cipher) return cipher.error();
      if (cipher.value() > 3)
        return Error::make("malformed", "cipher alg out of range");
      auto integrity = r.u8();
      if (!integrity) return integrity.error();
      if (integrity.value() > 3)
        return Error::make("malformed", "integrity alg out of range");
      auto caps = decode_caps(r);
      if (!caps) return caps.error();
      return NasMessage{
          NasSecurityModeCommand{static_cast<CipherAlg>(cipher.value()),
                                 static_cast<IntegrityAlg>(integrity.value()),
                                 caps.value()}};
    }
    case 12: {
      auto type = r.u8();
      if (!type) return type.error();
      return NasMessage{
          IdentityRequest{static_cast<IdentityType>(type.value())}};
    }
    case 13: {
      auto guti = decode_guti(r);
      if (!guti) return guti.error();
      auto t3512 = r.u16();
      if (!t3512) return t3512.error();
      return NasMessage{RegistrationAccept{guti.value(), t3512.value()}};
    }
    case 14: {
      auto cause = decode_cause(r);
      if (!cause) return cause.error();
      return NasMessage{RegistrationReject{cause.value()}};
    }
    case 15:
      return NasMessage{ServiceAccept{}};
    case 16: {
      auto cause = decode_cause(r);
      if (!cause) return cause.error();
      return NasMessage{ServiceReject{cause.value()}};
    }
    case 17:
      return NasMessage{DeregistrationAcceptNw{}};
    case 18: {
      auto has = r.boolean();
      if (!has) return has.error();
      ConfigurationUpdateCommand m;
      if (has.value()) {
        auto guti = decode_guti(r);
        if (!guti) return guti.error();
        m.new_guti = guti.value();
      }
      return NasMessage{m};
    }
    default:
      return Error::make("malformed",
                         "unknown NAS tag " + std::to_string(tag.value()));
  }
}

}  // namespace xsec::ran
