#include "ran/interfaces.hpp"

namespace xsec::ran {

std::string to_string(F1apProcedure p) {
  switch (p) {
    case F1apProcedure::kInitialUlRrcMessageTransfer:
      return "InitialULRRCMessageTransfer";
    case F1apProcedure::kUlRrcMessageTransfer: return "ULRRCMessageTransfer";
    case F1apProcedure::kDlRrcMessageTransfer: return "DLRRCMessageTransfer";
    case F1apProcedure::kUeContextSetup: return "UEContextSetup";
    case F1apProcedure::kUeContextRelease: return "UEContextRelease";
  }
  return "unknown";
}

std::string to_string(NgapProcedure p) {
  switch (p) {
    case NgapProcedure::kInitialUeMessage: return "InitialUEMessage";
    case NgapProcedure::kUplinkNasTransport: return "UplinkNASTransport";
    case NgapProcedure::kDownlinkNasTransport: return "DownlinkNASTransport";
    case NgapProcedure::kInitialContextSetup: return "InitialContextSetup";
    case NgapProcedure::kUeContextReleaseCommand:
      return "UEContextReleaseCommand";
    case NgapProcedure::kUeContextReleaseComplete:
      return "UEContextReleaseComplete";
    case NgapProcedure::kPaging: return "Paging";
  }
  return "unknown";
}

namespace {
constexpr std::uint16_t kF1apMagic = 0xF1A0;
constexpr std::uint16_t kNgapMagic = 0x06A0;
}  // namespace

Bytes encode_f1ap(const F1apMessage& msg) {
  ByteWriter w;
  w.u16(kF1apMagic);
  w.u8(static_cast<std::uint8_t>(msg.procedure));
  w.u32(msg.gnb_du_ue_id);
  w.u16(msg.rnti.value);
  w.u32(msg.cell.gnb_id);
  w.u16(msg.cell.cell);
  w.u32(static_cast<std::uint32_t>(msg.rrc_container.size()));
  w.raw(msg.rrc_container);
  return w.take();
}

Result<F1apMessage> decode_f1ap(const Bytes& wire) {
  ByteReader r(wire);
  auto magic = r.u16();
  if (!magic) return magic.error();
  if (magic.value() != kF1apMagic)
    return Error::make("malformed", "bad F1AP magic");
  auto proc = r.u8();
  if (!proc) return proc.error();
  if (proc.value() > 4)
    return Error::make("malformed", "F1AP procedure out of range");
  auto du_id = r.u32();
  if (!du_id) return du_id.error();
  auto rnti = r.u16();
  if (!rnti) return rnti.error();
  auto gnb = r.u32();
  if (!gnb) return gnb.error();
  auto cell = r.u16();
  if (!cell) return cell.error();
  auto len = r.u32();
  if (!len) return len.error();
  auto container = r.raw(len.value());
  if (!container) return container.error();
  F1apMessage msg;
  msg.procedure = static_cast<F1apProcedure>(proc.value());
  msg.gnb_du_ue_id = du_id.value();
  msg.rnti = Rnti{rnti.value()};
  msg.cell = CellId{gnb.value(), cell.value()};
  msg.rrc_container = container.value();
  return msg;
}

Bytes encode_ngap(const NgapMessage& msg) {
  ByteWriter w;
  w.u16(kNgapMagic);
  w.u8(static_cast<std::uint8_t>(msg.procedure));
  w.u64(msg.ran_ue_ngap_id);
  w.u64(msg.amf_ue_ngap_id);
  w.u32(static_cast<std::uint32_t>(msg.nas_pdu.size()));
  w.raw(msg.nas_pdu);
  w.u64(msg.paging_tmsi);
  return w.take();
}

Result<NgapMessage> decode_ngap(const Bytes& wire) {
  ByteReader r(wire);
  auto magic = r.u16();
  if (!magic) return magic.error();
  if (magic.value() != kNgapMagic)
    return Error::make("malformed", "bad NGAP magic");
  auto proc = r.u8();
  if (!proc) return proc.error();
  if (proc.value() > 6)
    return Error::make("malformed", "NGAP procedure out of range");
  auto ran_id = r.u64();
  if (!ran_id) return ran_id.error();
  auto amf_id = r.u64();
  if (!amf_id) return amf_id.error();
  auto len = r.u32();
  if (!len) return len.error();
  auto pdu = r.raw(len.value());
  if (!pdu) return pdu.error();
  auto paging = r.u64();
  if (!paging) return paging.error();
  NgapMessage msg;
  msg.procedure = static_cast<NgapProcedure>(proc.value());
  msg.ran_ue_ngap_id = ran_id.value();
  msg.amf_ue_ngap_id = amf_id.value();
  msg.nas_pdu = pdu.value();
  msg.paging_tmsi = paging.value();
  return msg;
}

}  // namespace xsec::ran
