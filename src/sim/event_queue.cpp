#include "sim/event_queue.hpp"

#include <cassert>

namespace xsec::sim {

void EventQueue::schedule_at(SimTime t, Action action) {
  assert(t >= now_ && "cannot schedule in the past");
  heap_.push(Entry{t, next_seq_++, std::move(action)});
}

std::size_t EventQueue::run_until(SimTime end) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= end) {
    // Copy out before pop so the action may schedule new events.
    Entry entry{heap_.top().time, heap_.top().seq,
                std::move(const_cast<Entry&>(heap_.top()).action)};
    heap_.pop();
    now_ = entry.time;
    entry.action();
    ++executed;
  }
  if (now_ < end) now_ = end;
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (!heap_.empty() && executed < max_events) {
    Entry entry{heap_.top().time, heap_.top().seq,
                std::move(const_cast<Entry&>(heap_.top()).action)};
    heap_.pop();
    now_ = entry.time;
    entry.action();
    ++executed;
  }
  return executed;
}

}  // namespace xsec::sim
