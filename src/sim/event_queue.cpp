#include "sim/event_queue.hpp"

#include <cassert>

namespace xsec::sim {

EventQueue::EventQueue(std::size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {}

void EventQueue::schedule_on(std::size_t lane, SimTime t, Action action) {
  assert(lane < lanes_.size() && "lane out of range");
  assert(t >= now_ && "cannot schedule in the past");
  Lane& l = lanes_[lane];
  l.heap.push(Entry{t, l.next_seq++, std::move(action)});
}

std::size_t EventQueue::pending() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.heap.size();
  return n;
}

std::size_t EventQueue::next_lane() const {
  // The merge rule: earliest time wins; ties go to the lowest lane index
  // (within a lane the heap already orders by schedule sequence). This is a
  // pure function of what was scheduled, so multi-lane runs replay
  // identically regardless of how lanes map to threads.
  std::size_t best = lanes_.size();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& l = lanes_[i];
    if (l.heap.empty()) continue;
    if (best == lanes_.size() || l.heap.top().time < lanes_[best].heap.top().time)
      best = i;
  }
  return best;
}

void EventQueue::run_top(std::size_t lane, std::size_t& executed) {
  Lane& l = lanes_[lane];
  // Copy out before pop so the action may schedule new events.
  Entry entry{l.heap.top().time, l.heap.top().seq,
              std::move(const_cast<Entry&>(l.heap.top()).action)};
  l.heap.pop();
  now_ = entry.time;
  entry.action();
  ++executed;
}

std::size_t EventQueue::run_until(SimTime end) {
  std::size_t executed = 0;
  for (std::size_t lane = next_lane(); lane < lanes_.size();
       lane = next_lane()) {
    if (lanes_[lane].heap.top().time > end) break;
    run_top(lane, executed);
  }
  if (now_ < end) now_ = end;
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  for (std::size_t lane = next_lane();
       lane < lanes_.size() && executed < max_events; lane = next_lane())
    run_top(lane, executed);
  return executed;
}

}  // namespace xsec::sim
