#include "sim/radio.hpp"

#include "common/log.hpp"

namespace xsec::sim {

RadioCell::RadioCell(EventQueue* queue, RadioParams params, Rng rng)
    : queue_(queue), params_(params), rng_(rng) {}

std::uint64_t RadioCell::add_endpoint(DownlinkHandler handler) {
  std::uint64_t tag = next_tag_++;
  endpoints_[tag] = std::move(handler);
  return tag;
}

void RadioCell::remove_endpoint(std::uint64_t tag) { endpoints_.erase(tag); }

void RadioCell::uplink(std::uint64_t tag, ran::AirFrame frame) {
  frame.radio_tag = tag;
  std::optional<ran::AirFrame> current = std::move(frame);
  for (FrameInterceptor* interceptor : interceptors_) {
    current = interceptor->on_uplink(*current);
    if (!current) return;  // dropped by the attacker
  }
  // Only contention-based CCCH (no C-RNTI yet) is subject to loss; see
  // RadioParams::loss_probability.
  if (!current->rnti && rng_.chance(params_.loss_probability)) {
    ++frames_lost_;
    return;
  }
  queue_->schedule_after(params_.ul_delay,
                         [this, f = std::move(*current)]() mutable {
                           deliver_uplink(std::move(f));
                         });
}

void RadioCell::inject_uplink(std::uint64_t tag, ran::AirFrame frame) {
  frame.radio_tag = tag;
  queue_->schedule_after(params_.ul_delay,
                         [this, f = std::move(frame)]() mutable {
                           deliver_uplink(std::move(f));
                         });
}

void RadioCell::downlink(ran::AirFrame frame) {
  std::optional<ran::AirFrame> current = std::move(frame);
  for (FrameInterceptor* interceptor : interceptors_) {
    current = interceptor->on_downlink(*current);
    if (!current) return;
  }
  queue_->schedule_after(params_.dl_delay,
                         [this, f = std::move(*current)]() mutable {
                           deliver_downlink(std::move(f));
                         });
}

void RadioCell::inject_downlink(ran::AirFrame frame) {
  queue_->schedule_after(params_.dl_delay,
                         [this, f = std::move(frame)]() mutable {
                           deliver_downlink(std::move(f));
                         });
}

void RadioCell::deliver_uplink(ran::AirFrame frame) {
  if (!gnb_) return;
  ++frames_delivered_;
  gnb_->on_uplink(frame);
}

void RadioCell::deliver_downlink(ran::AirFrame frame) {
  if (frame.radio_tag == 0) {
    // Broadcast channel (paging): every endpoint hears it.
    for (const auto& [tag, handler] : endpoints_) handler(frame);
    frames_delivered_ += endpoints_.size();
    return;
  }
  auto it = endpoints_.find(frame.radio_tag);
  if (it == endpoints_.end()) {
    XSEC_LOG_DEBUG("radio", "downlink for detached endpoint tag=",
                   frame.radio_tag);
    return;
  }
  ++frames_delivered_;
  it->second(frame);
}

}  // namespace xsec::sim
