// Discrete-event simulation kernel.
//
// A single-threaded priority queue of (time, sequence, closure). Sequence
// numbers make same-timestamp events FIFO, which keeps protocol message
// ordering deterministic — a hard requirement for reproducible datasets.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace xsec::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  void schedule_at(SimTime t, Action action);
  void schedule_after(SimDuration d, Action action) {
    schedule_at(now_ + d, std::move(action));
  }

  /// Runs events until the queue drains or `end` is reached; returns the
  /// number of events executed.
  std::size_t run_until(SimTime end);
  /// Runs until the queue drains (bounded by max_events as a livelock
  /// guard; attacks that flood forever need run_until instead).
  std::size_t run_all(std::size_t max_events = 10'000'000);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
};

}  // namespace xsec::sim
