// Discrete-event simulation kernel.
//
// The queue is a deterministic merge of per-lane timelines. Each lane is an
// independent priority heap with its own sequence counter; execution always
// picks the globally earliest (time, lane, lane_seq) entry, so same-time
// events run lane 0 first and FIFO within a lane. A single-lane queue (the
// default) is exactly the classic (time, sequence) discrete-event loop the
// rest of the simulator was built on; multi-lane queues give each RIC shard
// its own timeline whose merge order is a pure function of the schedule —
// never of thread timing — which keeps datasets reproducible at any shard
// count.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace xsec::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// A queue merging `lanes` independent timelines (>= 1).
  explicit EventQueue(std::size_t lanes = 1);

  SimTime now() const { return now_; }
  std::size_t lane_count() const { return lanes_.size(); }

  /// Schedules on lane 0 (the classic single-timeline API).
  void schedule_at(SimTime t, Action action) {
    schedule_on(0, t, std::move(action));
  }
  void schedule_after(SimDuration d, Action action) {
    schedule_at(now_ + d, std::move(action));
  }

  /// Schedules on a specific lane's timeline. Same-time entries across
  /// lanes execute in lane-index order; within a lane, in schedule order.
  void schedule_on(std::size_t lane, SimTime t, Action action);
  void schedule_after_on(std::size_t lane, SimDuration d, Action action) {
    schedule_on(lane, now_ + d, std::move(action));
  }

  /// Runs events until every lane drains or `end` is reached; returns the
  /// number of events executed.
  std::size_t run_until(SimTime end);
  /// Runs until all lanes drain (bounded by max_events as a livelock
  /// guard; attacks that flood forever need run_until instead).
  std::size_t run_all(std::size_t max_events = 10'000'000);

  bool empty() const { return pending() == 0; }
  std::size_t pending() const;
  std::size_t lane_pending(std::size_t lane) const {
    return lanes_[lane].heap.size();
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Lane {
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::uint64_t next_seq = 0;
  };

  /// Index of the lane holding the globally next entry (lowest
  /// (time, lane, lane_seq)), or lane_count() if all lanes are empty.
  std::size_t next_lane() const;
  /// Pops and runs the top entry of `lane`.
  void run_top(std::size_t lane, std::size_t& executed);

  std::vector<Lane> lanes_;
  SimTime now_{0};
};

}  // namespace xsec::sim
