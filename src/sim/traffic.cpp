#include "sim/traffic.hpp"

namespace xsec::sim {

BenignTrafficGenerator::BenignTrafficGenerator(Testbed* testbed,
                                               TrafficConfig config)
    : testbed_(testbed), config_(std::move(config)), rng_(config_.seed) {}

void BenignTrafficGenerator::schedule_all() {
  // Assign each subscriber a device profile up front.
  for (int i = 0; i < config_.num_subscribers; ++i) {
    std::uint64_t msin = config_.base_msin + static_cast<std::uint64_t>(i);
    subscriber_profile_[msin] =
        rng_.uniform_u64(0, config_.profiles.size() - 1);
  }

  SimTime t = config_.start;
  for (int s = 0; s < config_.num_sessions; ++s) {
    std::uint64_t msin =
        config_.base_msin +
        rng_.uniform_u64(0, static_cast<std::uint64_t>(
                                config_.num_subscribers - 1));
    // Sample the per-session randomness now (deterministic given the seed);
    // build the UE lazily at its start time so GUTI reuse can observe the
    // subscriber's previous sessions.
    const DeviceProfile& profile = config_.profiles[subscriber_profile_[msin]];
    ran::Supi supi{config_.plmn, msin};
    ran::UeConfig ue_config = make_session_config(profile, supi, rng_);
    bool try_guti_reuse = rng_.chance(profile.guti_reuse_probability);

    testbed_->queue().schedule_at(
        t, [this, msin, ue_config = std::move(ue_config),
            try_guti_reuse]() mutable {
          SubscriberState& state = subscriber_state_[msin];
          // The previous session (if any) published its GUTI when it got
          // RegistrationAccept; reuse it for an S-TMSI-based setup.
          if (state.last_session) {
            auto guti = state.last_session->guti();
            if (guti) state.last_guti = guti;
          }
          if (try_guti_reuse && state.last_guti)
            ue_config.stored_guti = state.last_guti;
          // Mobile-terminated sessions are preceded by the paging that
          // caused them (benign Paging on the broadcast channel).
          if (ue_config.establishment_cause ==
              ran::EstablishmentCause::kMtAccess)
            testbed_->amf().page(ue_config.supi);
          state.last_session = testbed_->add_ue(
              std::move(ue_config),
              testbed_->now() + SimDuration::from_ms(20));
        });

    ++sessions_scheduled_;
    t = t + SimDuration::from_us(static_cast<std::int64_t>(
            rng_.exponential(static_cast<double>(config_.arrival_mean.us))));
  }
}

}  // namespace xsec::sim
