// End-to-end 5G SA testbed wiring: UEs <-> RadioCell(s) <-> gNB(s) <-> one
// shared AMF, plus per-gNB InterfaceTaps the RIC agents collect from. This
// is the simulated equivalent of the paper's OAI + USRP B210 testbed;
// multi-cell configurations model a RIC managing several E2 nodes.
#pragma once

#include <memory>
#include <vector>

#include "ran/amf.hpp"
#include "ran/gnb.hpp"
#include "ran/interfaces.hpp"
#include "ran/ue.hpp"
#include "sim/event_queue.hpp"
#include "sim/radio.hpp"

namespace xsec::sim {

struct TestbedConfig {
  ran::GnbConfig gnb;
  ran::AmfConfig amf;
  RadioParams radio;
  SimDuration ngap_delay = SimDuration::from_ms(1);
  std::uint64_t seed = 2024;
  /// Number of cells/gNBs (each with its own radio cell and taps), all
  /// served by the shared AMF.
  std::size_t num_cells = 1;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  EventQueue& queue() { return queue_; }
  ran::Amf& amf() { return *amf_; }
  ran::SubscriberDb& subscribers() { return subscribers_; }
  SimTime now() const { return queue_.now(); }

  std::size_t cell_count() const { return sites_.size(); }
  RadioCell& cell(std::size_t index = 0) { return *sites_[index]->cell; }
  ran::Gnb& gnb(std::size_t index = 0) { return *sites_[index]->gnb; }
  ran::InterfaceTaps& taps(std::size_t index = 0) {
    return sites_[index]->taps;
  }

  /// Factory signature for custom (attack) UEs: receives fully wired hooks.
  using UeFactory =
      std::function<std::unique_ptr<ran::Ue>(ran::UeHooks hooks)>;

  /// Creates, provisions, and owns a benign UE; powers it on at `start`,
  /// camped on `cell_index`.
  ran::Ue* add_ue(ran::UeConfig config, SimTime start,
                  std::size_t cell_index = 0);
  /// Same, but the UE object is built by `factory` (attack UEs). The SUPI
  /// is only used for subscriber provisioning.
  ran::Ue* add_custom_ue(const ran::Supi& supi, UeFactory factory,
                         SimTime start, std::size_t cell_index = 0);

  void run_for(SimDuration d) { queue_.run_until(queue_.now() + d); }
  void run_until(SimTime t) { queue_.run_until(t); }
  /// Drains all pending events (bounded).
  void run_all() { queue_.run_all(); }

  std::size_t sessions_created() const { return slots_.size(); }
  std::size_t sessions_ended() const;
  /// Radio endpoint tag of a UE created by this testbed (0 if unknown).
  /// MiTM attacks use this to aim their interceptors at a specific victim.
  std::uint64_t tag_of(const ran::Ue* ue) const;

 private:
  struct Site {
    ran::InterfaceTaps taps;
    std::unique_ptr<RadioCell> cell;
    std::unique_ptr<ran::Gnb> gnb;
  };
  struct UeSlot {
    std::unique_ptr<ran::Ue> ue;
    std::uint64_t tag = 0;
    std::size_t cell_index = 0;
  };

  ran::UeHooks make_hooks(UeSlot* slot);

  TestbedConfig config_;
  EventQueue queue_;
  ran::SubscriberDb subscribers_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<ran::Amf> amf_;
  std::vector<std::unique_ptr<UeSlot>> slots_;
};

}  // namespace xsec::sim
