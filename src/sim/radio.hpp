// Simulated radio cell (Uu interface).
//
// Connects many UE endpoints to one gNB with configurable propagation delay
// and frame loss (loss triggers the UEs' T300 retransmissions — the benign
// noise source the paper blames for false positives). A chain of
// FrameInterceptors sits on the air interface; MiTM attacks (overshadowing,
// message overwrite [32, 40, 62]) are implemented as interceptors, and rogue
// UEs simply attach as additional endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "common/rng.hpp"
#include "ran/gnb.hpp"
#include "ran/interfaces.hpp"
#include "sim/event_queue.hpp"

namespace xsec::sim {

/// In-path attacker hook. Returning nullopt drops the frame; returning a
/// modified frame overwrites it (overshadowing). Interceptors may also
/// inject frames via the RadioCell handle they are given at attach time.
class FrameInterceptor {
 public:
  virtual ~FrameInterceptor() = default;
  virtual std::optional<ran::AirFrame> on_uplink(const ran::AirFrame& frame) {
    return frame;
  }
  virtual std::optional<ran::AirFrame> on_downlink(
      const ran::AirFrame& frame) {
    return frame;
  }
};

struct RadioParams {
  SimDuration ul_delay = SimDuration::from_ms(2);
  SimDuration dl_delay = SimDuration::from_ms(2);
  /// Loss probability for contention-based CCCH uplink (SRB0, no RLC ARQ):
  /// lost RRCSetupRequests trigger the UE's T300 retransmissions — the
  /// benign "RRC message retransmissions" the paper cites as a false
  /// positive source. Established-bearer traffic rides RLC AM and is
  /// modelled loss-free.
  double loss_probability = 0.0;
};

class RadioCell {
 public:
  using DownlinkHandler = std::function<void(const ran::AirFrame&)>;

  RadioCell(EventQueue* queue, RadioParams params, Rng rng);

  void attach_gnb(ran::Gnb* gnb) { gnb_ = gnb; }

  /// Registers a UE endpoint; the returned tag must stamp its uplink frames.
  std::uint64_t add_endpoint(DownlinkHandler handler);
  void remove_endpoint(std::uint64_t tag);

  /// UE -> gNB. The cell stamps the tag, runs interceptors, applies loss
  /// and delay, then delivers to the gNB.
  void uplink(std::uint64_t tag, ran::AirFrame frame);
  /// gNB -> UE, routed by radio_tag.
  void downlink(ran::AirFrame frame);

  /// Injects an uplink frame that does NOT pass the interceptor chain —
  /// used by MiTM interceptors to emit their own crafted frames (they would
  /// otherwise intercept themselves).
  void inject_uplink(std::uint64_t tag, ran::AirFrame frame);
  void inject_downlink(ran::AirFrame frame);

  void add_interceptor(FrameInterceptor* interceptor) {
    interceptors_.push_back(interceptor);
  }

  std::size_t frames_lost() const { return frames_lost_; }
  std::size_t frames_delivered() const { return frames_delivered_; }

 private:
  void deliver_uplink(ran::AirFrame frame);
  void deliver_downlink(ran::AirFrame frame);

  EventQueue* queue_;
  RadioParams params_;
  Rng rng_;
  ran::Gnb* gnb_ = nullptr;
  std::map<std::uint64_t, DownlinkHandler> endpoints_;
  std::vector<FrameInterceptor*> interceptors_;
  std::uint64_t next_tag_ = 1;
  std::size_t frames_lost_ = 0;
  std::size_t frames_delivered_ = 0;
};

}  // namespace xsec::sim
