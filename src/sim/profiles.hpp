// Device profiles for benign traffic diversity.
//
// The paper collects benign traffic from four commodity phones (Pixel 5,
// Pixel 6, Galaxy A22, Galaxy A53) plus OAI soft-UEs on COLOSSEUM. Each
// profile varies the observable parameters a phone model actually varies:
// advertised security capabilities, establishment-cause mix, session
// activity shape, processing latency, and how often the device returns with
// a stored GUTI.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "ran/rrc.hpp"
#include "ran/security.hpp"
#include "ran/ue.hpp"

namespace xsec::sim {

struct DeviceProfile {
  std::string name;
  ran::SecurityCapabilities capabilities;
  /// (cause, weight) pairs sampled per session.
  std::vector<std::pair<ran::EstablishmentCause, double>> cause_weights;
  SimDuration processing_delay = SimDuration::from_ms(2);
  int min_activity_reports = 1;
  int max_activity_reports = 4;
  SimDuration activity_interval = SimDuration::from_ms(40);
  /// Probability a session ends with an explicit deregistration (vs. idling
  /// until the network releases the UE).
  double deregister_probability = 0.7;
  /// Probability a returning subscriber reuses its stored GUTI.
  double guti_reuse_probability = 0.6;
};

/// The five benign device profiles of the paper's dataset.
const std::vector<DeviceProfile>& standard_profiles();

/// Builds a UeConfig for one session of `supi` under `profile`, sampling
/// the per-session stochastic fields from `rng`.
ran::UeConfig make_session_config(const DeviceProfile& profile,
                                  const ran::Supi& supi, Rng& rng);

}  // namespace xsec::sim
