#include "sim/profiles.hpp"

namespace xsec::sim {

const std::vector<DeviceProfile>& standard_profiles() {
  using EC = ran::EstablishmentCause;
  static const std::vector<DeviceProfile> profiles = [] {
    std::vector<DeviceProfile> p;

    DeviceProfile pixel5;
    pixel5.name = "Pixel 5";
    pixel5.capabilities = ran::SecurityCapabilities{0b0111, 0b0110};
    pixel5.cause_weights = {{EC::kMoSignalling, 0.5},
                            {EC::kMoData, 0.35},
                            {EC::kMtAccess, 0.1},
                            {EC::kMoVoiceCall, 0.05}};
    pixel5.processing_delay = SimDuration::from_ms(2);
    pixel5.min_activity_reports = 1;
    pixel5.max_activity_reports = 4;
    pixel5.deregister_probability = 0.7;
    pixel5.guti_reuse_probability = 0.65;
    p.push_back(pixel5);

    DeviceProfile pixel6 = pixel5;
    pixel6.name = "Pixel 6";
    pixel6.capabilities = ran::SecurityCapabilities{0b1111, 0b1110};
    pixel6.processing_delay = SimDuration::from_ms(1);
    pixel6.cause_weights = {{EC::kMoSignalling, 0.45},
                            {EC::kMoData, 0.4},
                            {EC::kMtAccess, 0.1},
                            {EC::kMoSms, 0.05}};
    p.push_back(pixel6);

    DeviceProfile a22;
    a22.name = "Galaxy A22";
    a22.capabilities = ran::SecurityCapabilities{0b0111, 0b0110};
    a22.cause_weights = {{EC::kMoSignalling, 0.6},
                         {EC::kMoData, 0.3},
                         {EC::kMoSms, 0.1}};
    a22.processing_delay = SimDuration::from_ms(3);
    a22.min_activity_reports = 0;
    a22.max_activity_reports = 3;
    a22.deregister_probability = 0.5;
    a22.guti_reuse_probability = 0.5;
    p.push_back(a22);

    DeviceProfile a53 = a22;
    a53.name = "Galaxy A53";
    a53.capabilities = ran::SecurityCapabilities{0b1111, 0b0110};
    a53.processing_delay = SimDuration::from_ms(2);
    a53.max_activity_reports = 5;
    a53.deregister_probability = 0.6;
    p.push_back(a53);

    DeviceProfile oai;
    oai.name = "OAI soft-UE (COLOSSEUM)";
    oai.capabilities = ran::SecurityCapabilities{0b0011, 0b0010};
    oai.cause_weights = {{EC::kMoSignalling, 0.8}, {EC::kMoData, 0.2}};
    oai.processing_delay = SimDuration::from_ms(1);
    oai.min_activity_reports = 0;
    oai.max_activity_reports = 2;
    oai.activity_interval = SimDuration::from_ms(25);
    oai.deregister_probability = 0.9;
    oai.guti_reuse_probability = 0.2;
    p.push_back(oai);

    return p;
  }();
  return profiles;
}

ran::UeConfig make_session_config(const DeviceProfile& profile,
                                  const ran::Supi& supi, Rng& rng) {
  ran::UeConfig config;
  config.supi = supi;
  config.capabilities = profile.capabilities;

  std::vector<double> weights;
  weights.reserve(profile.cause_weights.size());
  for (const auto& [cause, weight] : profile.cause_weights)
    weights.push_back(weight);
  config.establishment_cause =
      profile.cause_weights[rng.weighted_index(weights)].first;

  config.activity_reports = static_cast<int>(rng.uniform_i64(
      profile.min_activity_reports, profile.max_activity_reports));
  // Jitter the activity cadence +/-50% around the profile nominal.
  config.activity_interval = profile.activity_interval * rng.uniform(0.5, 1.5);
  config.deregister_at_end = rng.chance(profile.deregister_probability);
  config.processing_delay = profile.processing_delay;
  config.seed = rng();
  return config;
}

}  // namespace xsec::sim
