// Benign traffic generation.
//
// Reproduces the paper's benign dataset shape: >100 UE sessions drawn from
// a pool of subscribers spread across the five device profiles, with
// exponential session inter-arrival times and returning subscribers that
// re-register using their stored GUTI (driving the S-TMSI-based RRC setup
// path that the Blind DoS attack abuses).
#pragma once

#include <map>

#include "sim/profiles.hpp"
#include "sim/testbed.hpp"

namespace xsec::sim {

struct TrafficConfig {
  int num_sessions = 120;
  int num_subscribers = 40;
  /// Mean of the exponential inter-arrival distribution. The default keeps
  /// sessions mostly sequential with occasional overlap, matching the
  /// paper's testbed (phones attaching one at a time).
  SimDuration arrival_mean = SimDuration::from_ms(100);
  /// First session start offset.
  SimTime start = SimTime::from_ms(1);
  std::uint64_t seed = 42;
  std::vector<DeviceProfile> profiles = standard_profiles();
  /// Base MSIN for the subscriber pool (paper uses OAI test SIMs).
  std::uint64_t base_msin = 2089900000ULL;
  ran::Plmn plmn = ran::Plmn::test_network();
};

class BenignTrafficGenerator {
 public:
  BenignTrafficGenerator(Testbed* testbed, TrafficConfig config);

  /// Schedules all sessions onto the testbed's event queue. Call once,
  /// before running the simulation.
  void schedule_all();

  int sessions_scheduled() const { return sessions_scheduled_; }
  /// The profile each subscriber was assigned (index into config profiles).
  const std::map<std::uint64_t, std::size_t>& subscriber_profiles() const {
    return subscriber_profile_;
  }

 private:
  struct SubscriberState {
    std::optional<ran::Guti> last_guti;
    ran::Ue* last_session = nullptr;  // owned by the testbed
  };

  Testbed* testbed_;
  TrafficConfig config_;
  Rng rng_;
  std::map<std::uint64_t, std::size_t> subscriber_profile_;  // msin -> idx
  std::map<std::uint64_t, SubscriberState> subscriber_state_;
  int sessions_scheduled_ = 0;
};

}  // namespace xsec::sim
