#include "sim/testbed.hpp"

namespace xsec::sim {

namespace {
/// Id-space stride separating each gNB's RAN UE NGAP ids.
constexpr std::uint64_t kNgapIdStride = 1'000'000;
}  // namespace

Testbed::Testbed(TestbedConfig config) : config_(config) {
  if (config_.num_cells == 0) config_.num_cells = 1;

  for (std::size_t site_index = 0; site_index < config_.num_cells;
       ++site_index) {
    auto site = std::make_unique<Site>();
    site->cell = std::make_unique<RadioCell>(
        &queue_, config_.radio,
        Rng(config_.seed ^ (0xce11 + site_index * 7919)));

    ran::GnbConfig gnb_config = config_.gnb;
    gnb_config.cell.gnb_id = static_cast<std::uint32_t>(site_index + 1);
    gnb_config.seed = config_.gnb.seed + site_index;
    gnb_config.ngap_id_base = site_index * kNgapIdStride;

    ran::GnbHooks gnb_hooks;
    Site* raw_site = site.get();
    gnb_hooks.send_downlink = [raw_site](ran::AirFrame frame) {
      raw_site->cell->downlink(std::move(frame));
    };
    gnb_hooks.now = [this] { return queue_.now(); };
    gnb_hooks.schedule = [this](SimDuration d, std::function<void()> fn) {
      queue_.schedule_after(d, std::move(fn));
    };
    gnb_hooks.to_amf = [this](Bytes wire) {
      queue_.schedule_after(config_.ngap_delay, [this, w = std::move(wire)] {
        amf_->on_ngap(w);
      });
    };
    site->gnb = std::make_unique<ran::Gnb>(gnb_config, std::move(gnb_hooks),
                                           &site->taps);
    site->cell->attach_gnb(site->gnb.get());
    sites_.push_back(std::move(site));
  }

  ran::AmfHooks amf_hooks;
  amf_hooks.to_gnb = [this](Bytes wire) {
    // Route downlink NGAP to the gNB owning the session's id space;
    // paging (no session id) goes to every cell in the tracking area.
    auto decoded = ran::decode_ngap(wire);
    std::size_t site_index = 0;
    bool broadcast = false;
    if (decoded) {
      if (decoded.value().procedure == ran::NgapProcedure::kPaging)
        broadcast = true;
      else
        site_index = std::min<std::size_t>(
            sites_.size() - 1,
            decoded.value().ran_ue_ngap_id / kNgapIdStride);
    }
    queue_.schedule_after(config_.ngap_delay, [this, w = std::move(wire),
                                               site_index, broadcast] {
      if (broadcast) {
        for (auto& site : sites_) site->gnb->on_ngap(w);
      } else {
        sites_[site_index]->gnb->on_ngap(w);
      }
    });
  };
  amf_hooks.now = [this] { return queue_.now(); };
  amf_hooks.schedule = [this](SimDuration d, std::function<void()> fn) {
    queue_.schedule_after(d, std::move(fn));
  };
  amf_ = std::make_unique<ran::Amf>(config_.amf, std::move(amf_hooks),
                                    &subscribers_);
}

ran::UeHooks Testbed::make_hooks(UeSlot* slot) {
  ran::UeHooks hooks;
  hooks.send = [this, slot](ran::AirFrame frame) {
    sites_[slot->cell_index]->cell->uplink(slot->tag, std::move(frame));
  };
  hooks.now = [this] { return queue_.now(); };
  hooks.schedule = [this](SimDuration d, std::function<void()> fn) {
    queue_.schedule_after(d, std::move(fn));
  };
  return hooks;
}

ran::Ue* Testbed::add_ue(ran::UeConfig config, SimTime start,
                         std::size_t cell_index) {
  subscribers_.provision(config.supi);
  auto slot = std::make_unique<UeSlot>();
  UeSlot* raw = slot.get();
  raw->cell_index = std::min(cell_index, sites_.size() - 1);
  raw->tag = sites_[raw->cell_index]->cell->add_endpoint(
      [raw](const ran::AirFrame& frame) {
        if (raw->ue) raw->ue->receive(frame);
      });
  raw->ue = std::make_unique<ran::Ue>(std::move(config), make_hooks(raw));
  slots_.push_back(std::move(slot));
  queue_.schedule_at(start, [raw] { raw->ue->power_on(); });
  return raw->ue.get();
}

ran::Ue* Testbed::add_custom_ue(const ran::Supi& supi, UeFactory factory,
                                SimTime start, std::size_t cell_index) {
  subscribers_.provision(supi);
  auto slot = std::make_unique<UeSlot>();
  UeSlot* raw = slot.get();
  raw->cell_index = std::min(cell_index, sites_.size() - 1);
  raw->tag = sites_[raw->cell_index]->cell->add_endpoint(
      [raw](const ran::AirFrame& frame) {
        if (raw->ue) raw->ue->receive(frame);
      });
  raw->ue = factory(make_hooks(raw));
  slots_.push_back(std::move(slot));
  queue_.schedule_at(start, [raw] { raw->ue->power_on(); });
  return raw->ue.get();
}

std::uint64_t Testbed::tag_of(const ran::Ue* ue) const {
  for (const auto& slot : slots_)
    if (slot->ue.get() == ue) return slot->tag;
  return 0;
}

std::size_t Testbed::sessions_ended() const {
  std::size_t n = 0;
  for (const auto& slot : slots_)
    if (slot->ue && slot->ue->session_ended()) ++n;
  return n;
}

}  // namespace xsec::sim
