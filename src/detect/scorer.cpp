#include "detect/scorer.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "dl/serialize.hpp"

namespace xsec::detect {

double AnomalyDetector::score_window(
    const std::vector<std::vector<float>>& rows) {
  std::vector<float> flat;
  std::size_t dim = rows.empty() ? 0 : rows[0].size();
  flat.reserve(rows.size() * dim);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  return score_window(flat.data(), rows.size());
}

void AnomalyDetector::score_windows(const float* rows, std::size_t row_dim,
                                    std::size_t rows_per_window,
                                    std::size_t n_windows, double* scores) {
  for (std::size_t w = 0; w < n_windows; ++w)
    scores[w] = score_window(rows + w * row_dim, rows_per_window);
}

void Standardizer::fit(const dl::Matrix& data, float std_floor) {
  const std::size_t dim = data.cols();
  mean_.assign(dim, 0.0f);
  inv_std_.assign(dim, 1.0f);
  if (data.rows() == 0) return;
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < dim; ++c) mean_[c] += data.at(r, c);
  for (std::size_t c = 0; c < dim; ++c)
    mean_[c] /= static_cast<float>(data.rows());
  std::vector<double> var(dim, 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < dim; ++c) {
      double d = data.at(r, c) - mean_[c];
      var[c] += d * d;
    }
  for (std::size_t c = 0; c < dim; ++c) {
    float std_dev = static_cast<float>(
        std::sqrt(var[c] / static_cast<double>(data.rows())));
    inv_std_[c] = 1.0f / std::max(std_dev, std_floor);
  }
}

void Standardizer::apply(dl::Matrix& data) const {
  assert(data.cols() == mean_.size());
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data.at(r, c) = (data.at(r, c) - mean_[c]) * inv_std_[c];
}

void Standardizer::apply(std::vector<float>& row) const {
  assert(row.size() == mean_.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = (row[c] - mean_[c]) * inv_std_[c];
}

AutoencoderDetector::AutoencoderDetector(std::size_t window_size,
                                         std::size_t feature_dim,
                                         DetectorConfig config,
                                         std::vector<std::size_t> hidden)
    : window_size_(window_size),
      feature_dim_(feature_dim),
      config_(config),
      model_(dl::AutoencoderConfig{window_size * feature_dim,
                                   std::move(hidden), config.seed,
                                   /*sigmoid_output=*/false}) {}

dl::Matrix AutoencoderDetector::standardize(
    const dl::Matrix& raw_windows) const {
  dl::Matrix out = raw_windows;
  if (scaler_.fitted()) scaler_.apply(out);
  return out;
}

void AutoencoderDetector::fit(const WindowDataset& benign) {
  assert(benign.window_size() == window_size_);
  assert(benign.feature_dim() == feature_dim_);
  dl::Matrix raw = benign.ae_matrix();
  scaler_.fit(raw);
  dl::Matrix data = standardize(raw);
  dl::TrainConfig train;
  train.epochs = config_.epochs;
  train.batch_size = config_.batch_size;
  train.learning_rate = config_.learning_rate;
  model_.fit(data, train);
  calibrate(window_scores(raw), config_.threshold_percentile);
}

std::vector<double> AutoencoderDetector::window_scores(
    const dl::Matrix& raw_windows) {
  dl::Matrix data = standardize(raw_windows);
  dl::Matrix recon = model_.reconstruct(data);
  std::vector<double> scores(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    if (config_.ae_score == DetectorConfig::AeScore::kMean) {
      double acc = 0.0;
      for (std::size_t c = 0; c < data.cols(); ++c) {
        double d = static_cast<double>(recon.at(r, c)) - data.at(r, c);
        acc += d * d;
      }
      scores[r] = acc / static_cast<double>(data.cols());
      continue;
    }
    double worst = 0.0;
    for (std::size_t t = 0; t < window_size_; ++t) {
      double acc = 0.0;
      for (std::size_t c = 0; c < feature_dim_; ++c) {
        std::size_t col = t * feature_dim_ + c;
        double d = static_cast<double>(recon.at(r, col)) - data.at(r, col);
        acc += d * d;
      }
      worst = std::max(worst, acc / static_cast<double>(feature_dim_));
    }
    scores[r] = worst;
  }
  return scores;
}

std::vector<double> AutoencoderDetector::score(const WindowDataset& data) {
  dl::Matrix m = data.ae_matrix();
  return window_scores(m);
}

double AutoencoderDetector::score_window(const float* rows,
                                         std::size_t n_rows) {
  double score = 0.0;
  score_windows(rows, feature_dim_, n_rows, 1, &score);
  return score;
}

void AutoencoderDetector::score_windows(const float* rows,
                                        std::size_t row_dim,
                                        std::size_t rows_per_window,
                                        std::size_t n_windows,
                                        double* scores) {
  assert(row_dim == feature_dim_);
  assert(rows_per_window == window_size_);
  (void)row_dim;
  (void)rows_per_window;
  const std::size_t flat = window_size_ * feature_dim_;
  infer_input_.resize(n_windows, flat);
  // Sliding windows over contiguous rows: each window's rows are already
  // contiguous, so flattening is one copy per window.
  for (std::size_t w = 0; w < n_windows; ++w)
    std::memcpy(infer_input_.row(w), rows + w * feature_dim_,
                flat * sizeof(float));
  if (scaler_.fitted()) scaler_.apply(infer_input_);
  const dl::Matrix& recon = model_.infer(infer_input_);
  for (std::size_t r = 0; r < n_windows; ++r) {
    if (config_.ae_score == DetectorConfig::AeScore::kMean) {
      double acc = 0.0;
      for (std::size_t c = 0; c < flat; ++c) {
        double d =
            static_cast<double>(recon.at(r, c)) - infer_input_.at(r, c);
        acc += d * d;
      }
      scores[r] = acc / static_cast<double>(flat);
      continue;
    }
    double worst = 0.0;
    for (std::size_t t = 0; t < window_size_; ++t) {
      double acc = 0.0;
      for (std::size_t c = 0; c < feature_dim_; ++c) {
        std::size_t col = t * feature_dim_ + c;
        double d =
            static_cast<double>(recon.at(r, col)) - infer_input_.at(r, col);
        acc += d * d;
      }
      worst = std::max(worst, acc / static_cast<double>(feature_dim_));
    }
    scores[r] = worst;
  }
}

LstmDetector::LstmDetector(std::size_t window_size, std::size_t feature_dim,
                           DetectorConfig config, std::size_t hidden_dim)
    : window_size_(window_size),
      feature_dim_(feature_dim),
      config_(config),
      model_(dl::LstmConfig{feature_dim, hidden_dim, config.seed,
                            /*sigmoid_output=*/false}) {}

void LstmDetector::fit_scaler(
    const std::vector<dl::SequenceSample>& raw_samples) {
  // Fit on every record vector appearing in the samples.
  std::size_t rows = 0;
  for (const auto& sample : raw_samples) rows += sample.window.size() + 1;
  dl::Matrix all(rows, feature_dim_);
  std::size_t r = 0;
  for (const auto& sample : raw_samples) {
    for (const auto& row : sample.window) {
      for (std::size_t c = 0; c < feature_dim_; ++c) all.at(r, c) = row[c];
      ++r;
    }
    for (std::size_t c = 0; c < feature_dim_; ++c)
      all.at(r, c) = sample.target[c];
    ++r;
  }
  scaler_.fit(all);
}

std::vector<dl::SequenceSample> LstmDetector::standardize(
    const std::vector<dl::SequenceSample>& raw_samples) const {
  std::vector<dl::SequenceSample> out = raw_samples;
  if (!scaler_.fitted()) return out;
  for (auto& sample : out) {
    for (auto& row : sample.window) scaler_.apply(row);
    scaler_.apply(sample.target);
  }
  return out;
}

std::vector<double> LstmDetector::sample_errors(
    const std::vector<dl::SequenceSample>& standardized) {
  if (config_.lstm_score == DetectorConfig::LstmScore::kNextOnly)
    return model_.prediction_errors(standardized);
  return model_.max_step_errors(standardized);
}

void LstmDetector::fit(const WindowDataset& benign) {
  assert(benign.window_size() == window_size_);
  assert(benign.feature_dim() == feature_dim_);
  auto raw = benign.lstm_samples();
  fit_scaler(raw);
  auto samples = standardize(raw);
  dl::LstmTrainConfig train;
  train.epochs = config_.epochs;
  train.batch_size = config_.batch_size;
  train.learning_rate = config_.learning_rate;
  model_.fit(samples, train);
  calibrate(sample_errors(samples), config_.threshold_percentile);
}

std::vector<double> LstmDetector::score(const WindowDataset& data) {
  return sample_errors(standardize(data.lstm_samples()));
}

double LstmDetector::score_window(const float* rows, std::size_t n_rows) {
  double score = 0.0;
  score_windows(rows, feature_dim_, n_rows, 1, &score);
  return score;
}

void LstmDetector::score_windows(const float* rows, std::size_t row_dim,
                                 std::size_t rows_per_window,
                                 std::size_t n_windows, double* scores) {
  assert(row_dim == feature_dim_);
  assert(rows_per_window == window_size_ + 1);
  (void)row_dim;
  (void)rows_per_window;
  // The flat block already has the shared sliding-window layout the
  // strided batch path wants (window w's step t = row w+t, its target =
  // row w+t+1): one copy of the whole block, one scaler pass, and every
  // distinct record row goes through Wx exactly once no matter how many
  // windows overlap it.
  const std::size_t block_rows = n_windows + window_size_;
  infer_rows_.resize(block_rows, feature_dim_);
  std::memcpy(infer_rows_.row(0), rows,
              block_rows * feature_dim_ * sizeof(float));
  if (scaler_.fitted()) scaler_.apply(infer_rows_);
  const bool max_step =
      config_.lstm_score == DetectorConfig::LstmScore::kMaxStep;
  model_.window_errors_strided(infer_rows_, n_windows, window_size_,
                               lstm_ws_, max_step, scores);
}

std::unique_ptr<AnomalyDetector> AutoencoderDetector::clone_for_inference() {
  auto copy = std::make_unique<AutoencoderDetector>(
      window_size_, feature_dim_, config_, model_.config().hidden);
  // Weight transfer via the SMO serialization format: shapes match because
  // the clone was built from the same configuration. A failed transfer
  // must not yield a replica with fresh weights — returning nullptr makes
  // the engine fall back to inline serialized scoring instead.
  Status loaded =
      dl::load_params(copy->model_.params(), dl::save_params(model_.params()));
  if (!loaded.ok()) return nullptr;
  copy->scaler_ = scaler_;
  copy->set_threshold(threshold());
  return copy;
}

std::unique_ptr<AnomalyDetector> LstmDetector::clone_for_inference() {
  auto copy = std::make_unique<LstmDetector>(window_size_, feature_dim_,
                                             config_,
                                             model_.config().hidden_dim);
  Status loaded =
      dl::load_params(copy->model_.params(), dl::save_params(model_.params()));
  if (!loaded.ok()) return nullptr;
  copy->scaler_ = scaler_;
  copy->set_threshold(threshold());
  return copy;
}

}  // namespace xsec::detect
