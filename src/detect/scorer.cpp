#include "detect/scorer.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "dl/serialize.hpp"

namespace xsec::detect {

namespace {

/// Self-describing detector-state header ("XDET").
constexpr std::uint32_t kStateMagic = 0x58444554;
constexpr std::uint8_t kKindAutoencoder = 0;
constexpr std::uint8_t kKindLstm = 1;

void write_f32(ByteWriter& w, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  w.u32(bits);
}

Result<float> read_f32(ByteReader& r) {
  auto bits = r.u32();
  if (!bits) return bits.error();
  float v;
  std::uint32_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

void write_config(ByteWriter& w, const DetectorConfig& config) {
  w.f64(config.threshold_percentile);
  w.i64(config.epochs);
  w.f64(static_cast<double>(config.learning_rate));
  w.u64(config.batch_size);
  w.u64(config.seed);
  w.u8(static_cast<std::uint8_t>(config.ae_score));
  w.u8(static_cast<std::uint8_t>(config.lstm_score));
}

Result<DetectorConfig> read_config(ByteReader& r) {
  DetectorConfig config;
  auto pct = r.f64();
  if (!pct) return pct.error();
  config.threshold_percentile = pct.value();
  auto epochs = r.i64();
  if (!epochs) return epochs.error();
  config.epochs = static_cast<int>(epochs.value());
  auto lr = r.f64();
  if (!lr) return lr.error();
  config.learning_rate = static_cast<float>(lr.value());
  auto batch = r.u64();
  if (!batch) return batch.error();
  config.batch_size = static_cast<std::size_t>(batch.value());
  auto seed = r.u64();
  if (!seed) return seed.error();
  config.seed = seed.value();
  auto ae_score = r.u8();
  if (!ae_score) return ae_score.error();
  if (ae_score.value() > 1)
    return Error::make("range", "unknown ae_score mode");
  config.ae_score = static_cast<DetectorConfig::AeScore>(ae_score.value());
  auto lstm_score = r.u8();
  if (!lstm_score) return lstm_score.error();
  if (lstm_score.value() > 1)
    return Error::make("range", "unknown lstm_score mode");
  config.lstm_score =
      static_cast<DetectorConfig::LstmScore>(lstm_score.value());
  return config;
}

void write_scaler(ByteWriter& w, const Standardizer& scaler) {
  w.boolean(scaler.fitted());
  if (!scaler.fitted()) return;
  w.u32(static_cast<std::uint32_t>(scaler.dim()));
  for (float v : scaler.mean()) write_f32(w, v);
  for (float v : scaler.inv_std()) write_f32(w, v);
}

Status read_scaler(ByteReader& r, Standardizer& scaler) {
  auto fitted = r.boolean();
  if (!fitted) return Status(fitted.error());
  if (!fitted.value()) return Status::ok_status();
  auto dim = r.u32();
  if (!dim) return Status(dim.error());
  if (dim.value() > r.remaining())
    return Status(Error::make("overflow", "scaler dim exceeds payload"));
  std::vector<float> mean(dim.value());
  std::vector<float> inv_std(dim.value());
  for (float& v : mean) {
    auto f = read_f32(r);
    if (!f) return Status(f.error());
    v = f.value();
  }
  for (float& v : inv_std) {
    auto f = read_f32(r);
    if (!f) return Status(f.error());
    v = f.value();
  }
  scaler.restore(std::move(mean), std::move(inv_std));
  return Status::ok_status();
}

}  // namespace

double AnomalyDetector::score_window(
    const std::vector<std::vector<float>>& rows) {
  std::vector<float> flat;
  std::size_t dim = rows.empty() ? 0 : rows[0].size();
  flat.reserve(rows.size() * dim);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  return score_window(flat.data(), rows.size());
}

void AnomalyDetector::score_windows(const float* rows, std::size_t row_dim,
                                    std::size_t rows_per_window,
                                    std::size_t n_windows, double* scores) {
  for (std::size_t w = 0; w < n_windows; ++w)
    scores[w] = score_window(rows + w * row_dim, rows_per_window);
}

void Standardizer::fit(const dl::Matrix& data, float std_floor) {
  const std::size_t dim = data.cols();
  mean_.assign(dim, 0.0f);
  inv_std_.assign(dim, 1.0f);
  if (data.rows() == 0) return;
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < dim; ++c) mean_[c] += data.at(r, c);
  for (std::size_t c = 0; c < dim; ++c)
    mean_[c] /= static_cast<float>(data.rows());
  std::vector<double> var(dim, 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < dim; ++c) {
      double d = data.at(r, c) - mean_[c];
      var[c] += d * d;
    }
  for (std::size_t c = 0; c < dim; ++c) {
    float std_dev = static_cast<float>(
        std::sqrt(var[c] / static_cast<double>(data.rows())));
    inv_std_[c] = 1.0f / std::max(std_dev, std_floor);
  }
}

void Standardizer::apply(dl::Matrix& data) const {
  assert(data.cols() == mean_.size());
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data.at(r, c) = (data.at(r, c) - mean_[c]) * inv_std_[c];
}

void Standardizer::apply(std::vector<float>& row) const {
  assert(row.size() == mean_.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = (row[c] - mean_[c]) * inv_std_[c];
}

AutoencoderDetector::AutoencoderDetector(std::size_t window_size,
                                         std::size_t feature_dim,
                                         DetectorConfig config,
                                         std::vector<std::size_t> hidden)
    : window_size_(window_size),
      feature_dim_(feature_dim),
      config_(config),
      model_(dl::AutoencoderConfig{window_size * feature_dim,
                                   std::move(hidden), config.seed,
                                   /*sigmoid_output=*/false}) {}

dl::Matrix AutoencoderDetector::standardize(
    const dl::Matrix& raw_windows) const {
  dl::Matrix out = raw_windows;
  if (scaler_.fitted()) scaler_.apply(out);
  return out;
}

void AutoencoderDetector::fit(const WindowDataset& benign) {
  assert(benign.window_size() == window_size_);
  assert(benign.feature_dim() == feature_dim_);
  dl::Matrix raw = benign.ae_matrix();
  scaler_.fit(raw);
  dl::Matrix data = standardize(raw);
  dl::TrainConfig train;
  train.epochs = config_.epochs;
  train.batch_size = config_.batch_size;
  train.learning_rate = config_.learning_rate;
  model_.fit(data, train);
  calibrate(window_scores(raw), config_.threshold_percentile);
}

std::vector<double> AutoencoderDetector::window_scores(
    const dl::Matrix& raw_windows) {
  dl::Matrix data = standardize(raw_windows);
  dl::Matrix recon = model_.reconstruct(data);
  std::vector<double> scores(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    if (config_.ae_score == DetectorConfig::AeScore::kMean) {
      double acc = 0.0;
      for (std::size_t c = 0; c < data.cols(); ++c) {
        double d = static_cast<double>(recon.at(r, c)) - data.at(r, c);
        acc += d * d;
      }
      scores[r] = acc / static_cast<double>(data.cols());
      continue;
    }
    double worst = 0.0;
    for (std::size_t t = 0; t < window_size_; ++t) {
      double acc = 0.0;
      for (std::size_t c = 0; c < feature_dim_; ++c) {
        std::size_t col = t * feature_dim_ + c;
        double d = static_cast<double>(recon.at(r, col)) - data.at(r, col);
        acc += d * d;
      }
      worst = std::max(worst, acc / static_cast<double>(feature_dim_));
    }
    scores[r] = worst;
  }
  return scores;
}

std::vector<double> AutoencoderDetector::score(const WindowDataset& data) {
  dl::Matrix m = data.ae_matrix();
  return window_scores(m);
}

double AutoencoderDetector::score_window(const float* rows,
                                         std::size_t n_rows) {
  double score = 0.0;
  score_windows(rows, feature_dim_, n_rows, 1, &score);
  return score;
}

void AutoencoderDetector::score_windows(const float* rows,
                                        std::size_t row_dim,
                                        std::size_t rows_per_window,
                                        std::size_t n_windows,
                                        double* scores) {
  assert(row_dim == feature_dim_);
  assert(rows_per_window == window_size_);
  (void)row_dim;
  (void)rows_per_window;
  const std::size_t flat = window_size_ * feature_dim_;
  infer_input_.resize(n_windows, flat);
  // Sliding windows over contiguous rows: each window's rows are already
  // contiguous, so flattening is one copy per window.
  for (std::size_t w = 0; w < n_windows; ++w)
    std::memcpy(infer_input_.row(w), rows + w * feature_dim_,
                flat * sizeof(float));
  if (scaler_.fitted()) scaler_.apply(infer_input_);
  const dl::Matrix& recon = model_.infer(infer_input_);
  for (std::size_t r = 0; r < n_windows; ++r) {
    if (config_.ae_score == DetectorConfig::AeScore::kMean) {
      double acc = 0.0;
      for (std::size_t c = 0; c < flat; ++c) {
        double d =
            static_cast<double>(recon.at(r, c)) - infer_input_.at(r, c);
        acc += d * d;
      }
      scores[r] = acc / static_cast<double>(flat);
      continue;
    }
    double worst = 0.0;
    for (std::size_t t = 0; t < window_size_; ++t) {
      double acc = 0.0;
      for (std::size_t c = 0; c < feature_dim_; ++c) {
        std::size_t col = t * feature_dim_ + c;
        double d =
            static_cast<double>(recon.at(r, col)) - infer_input_.at(r, col);
        acc += d * d;
      }
      worst = std::max(worst, acc / static_cast<double>(feature_dim_));
    }
    scores[r] = worst;
  }
}

LstmDetector::LstmDetector(std::size_t window_size, std::size_t feature_dim,
                           DetectorConfig config, std::size_t hidden_dim)
    : window_size_(window_size),
      feature_dim_(feature_dim),
      config_(config),
      model_(dl::LstmConfig{feature_dim, hidden_dim, config.seed,
                            /*sigmoid_output=*/false}) {}

void LstmDetector::fit_scaler(
    const std::vector<dl::SequenceSample>& raw_samples) {
  // Fit on every record vector appearing in the samples.
  std::size_t rows = 0;
  for (const auto& sample : raw_samples) rows += sample.window.size() + 1;
  dl::Matrix all(rows, feature_dim_);
  std::size_t r = 0;
  for (const auto& sample : raw_samples) {
    for (const auto& row : sample.window) {
      for (std::size_t c = 0; c < feature_dim_; ++c) all.at(r, c) = row[c];
      ++r;
    }
    for (std::size_t c = 0; c < feature_dim_; ++c)
      all.at(r, c) = sample.target[c];
    ++r;
  }
  scaler_.fit(all);
}

std::vector<dl::SequenceSample> LstmDetector::standardize(
    const std::vector<dl::SequenceSample>& raw_samples) const {
  std::vector<dl::SequenceSample> out = raw_samples;
  if (!scaler_.fitted()) return out;
  for (auto& sample : out) {
    for (auto& row : sample.window) scaler_.apply(row);
    scaler_.apply(sample.target);
  }
  return out;
}

std::vector<double> LstmDetector::sample_errors(
    const std::vector<dl::SequenceSample>& standardized) {
  if (config_.lstm_score == DetectorConfig::LstmScore::kNextOnly)
    return model_.prediction_errors(standardized);
  return model_.max_step_errors(standardized);
}

void LstmDetector::fit(const WindowDataset& benign) {
  assert(benign.window_size() == window_size_);
  assert(benign.feature_dim() == feature_dim_);
  auto raw = benign.lstm_samples();
  fit_scaler(raw);
  auto samples = standardize(raw);
  dl::LstmTrainConfig train;
  train.epochs = config_.epochs;
  train.batch_size = config_.batch_size;
  train.learning_rate = config_.learning_rate;
  model_.fit(samples, train);
  calibrate(sample_errors(samples), config_.threshold_percentile);
}

std::vector<double> LstmDetector::score(const WindowDataset& data) {
  return sample_errors(standardize(data.lstm_samples()));
}

double LstmDetector::score_window(const float* rows, std::size_t n_rows) {
  double score = 0.0;
  score_windows(rows, feature_dim_, n_rows, 1, &score);
  return score;
}

void LstmDetector::score_windows(const float* rows, std::size_t row_dim,
                                 std::size_t rows_per_window,
                                 std::size_t n_windows, double* scores) {
  assert(row_dim == feature_dim_);
  assert(rows_per_window == window_size_ + 1);
  (void)row_dim;
  (void)rows_per_window;
  // The flat block already has the shared sliding-window layout the
  // strided batch path wants (window w's step t = row w+t, its target =
  // row w+t+1): one copy of the whole block, one scaler pass, and every
  // distinct record row goes through Wx exactly once no matter how many
  // windows overlap it.
  const std::size_t block_rows = n_windows + window_size_;
  infer_rows_.resize(block_rows, feature_dim_);
  std::memcpy(infer_rows_.row(0), rows,
              block_rows * feature_dim_ * sizeof(float));
  if (scaler_.fitted()) scaler_.apply(infer_rows_);
  const bool max_step =
      config_.lstm_score == DetectorConfig::LstmScore::kMaxStep;
  model_.window_errors_strided(infer_rows_, n_windows, window_size_,
                               lstm_ws_, max_step, scores);
}

std::unique_ptr<AnomalyDetector> AutoencoderDetector::clone_for_inference() {
  auto copy = std::make_unique<AutoencoderDetector>(
      window_size_, feature_dim_, config_, model_.config().hidden);
  // Weight transfer via the SMO serialization format: shapes match because
  // the clone was built from the same configuration. A failed transfer
  // must not yield a replica with fresh weights — returning nullptr makes
  // the engine fall back to inline serialized scoring instead.
  Status loaded =
      dl::load_params(copy->model_.params(), dl::save_params(model_.params()));
  if (!loaded.ok()) return nullptr;
  copy->scaler_ = scaler_;
  copy->set_threshold(threshold());
  return copy;
}

std::unique_ptr<AnomalyDetector> LstmDetector::clone_for_inference() {
  auto copy = std::make_unique<LstmDetector>(window_size_, feature_dim_,
                                             config_,
                                             model_.config().hidden_dim);
  Status loaded =
      dl::load_params(copy->model_.params(), dl::save_params(model_.params()));
  if (!loaded.ok()) return nullptr;
  copy->scaler_ = scaler_;
  copy->set_threshold(threshold());
  return copy;
}

Bytes AutoencoderDetector::save_state() {
  ByteWriter w;
  w.u32(kStateMagic);
  w.u8(kKindAutoencoder);
  w.u32(static_cast<std::uint32_t>(window_size_));
  w.u32(static_cast<std::uint32_t>(feature_dim_));
  const auto& hidden = model_.config().hidden;
  w.u32(static_cast<std::uint32_t>(hidden.size()));
  for (std::size_t h : hidden) w.u32(static_cast<std::uint32_t>(h));
  write_config(w, config_);
  write_scaler(w, scaler_);
  w.f64(threshold());
  Bytes params = dl::save_params(model_.params());
  w.u32(static_cast<std::uint32_t>(params.size()));
  w.raw(params);
  return w.take();
}

Bytes LstmDetector::save_state() {
  ByteWriter w;
  w.u32(kStateMagic);
  w.u8(kKindLstm);
  w.u32(static_cast<std::uint32_t>(window_size_));
  w.u32(static_cast<std::uint32_t>(feature_dim_));
  w.u32(static_cast<std::uint32_t>(model_.config().hidden_dim));
  write_config(w, config_);
  write_scaler(w, scaler_);
  w.f64(threshold());
  Bytes params = dl::save_params(model_.params());
  w.u32(static_cast<std::uint32_t>(params.size()));
  w.raw(params);
  return w.take();
}

bool AutoencoderDetector::fine_tune(const float* windows,
                                    std::size_t n_windows, std::size_t n_rows,
                                    const FineTuneConfig& tune) {
  if (n_windows == 0 || n_rows != window_size_) return false;
  const std::size_t flat = window_size_ * feature_dim_;
  dl::Matrix raw(n_windows, flat);
  std::memcpy(raw.row(0), windows, n_windows * flat * sizeof(float));
  // The scaler stays fixed: scores from the fine-tuned model live on the
  // same scale as the parent's, which is what lets the shadow gate compare
  // error distributions across versions.
  dl::Matrix data = standardize(raw);
  dl::TrainConfig train;
  train.epochs = tune.epochs;
  train.batch_size = tune.batch_size;
  train.learning_rate = tune.learning_rate;
  model_.fit(data, train);
  calibrate(window_scores(raw), tune.threshold_percentile);
  return true;
}

bool LstmDetector::fine_tune(const float* windows, std::size_t n_windows,
                             std::size_t n_rows, const FineTuneConfig& tune) {
  if (n_windows == 0 || n_rows != window_size_ + 1) return false;
  std::vector<dl::SequenceSample> raw(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    const float* base = windows + w * n_rows * feature_dim_;
    raw[w].window.resize(window_size_);
    for (std::size_t t = 0; t < window_size_; ++t)
      raw[w].window[t].assign(base + t * feature_dim_,
                              base + (t + 1) * feature_dim_);
    raw[w].target.assign(base + window_size_ * feature_dim_,
                         base + (window_size_ + 1) * feature_dim_);
  }
  auto samples = standardize(raw);
  dl::LstmTrainConfig train;
  train.epochs = tune.epochs;
  train.batch_size = tune.batch_size;
  train.learning_rate = tune.learning_rate;
  model_.fit(samples, train);
  calibrate(sample_errors(samples), tune.threshold_percentile);
  return true;
}

Result<std::unique_ptr<AnomalyDetector>> restore_detector(const Bytes& state) {
  ByteReader r(state);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (magic.value() != kStateMagic)
    return Error::make("magic", "not a detector state blob");
  auto kind = r.u8();
  if (!kind) return kind.error();
  auto window_size = r.u32();
  if (!window_size) return window_size.error();
  auto feature_dim = r.u32();
  if (!feature_dim) return feature_dim.error();
  if (window_size.value() == 0 || feature_dim.value() == 0)
    return Error::make("range", "zero window or feature dim");

  std::unique_ptr<AnomalyDetector> detector;
  Standardizer* scaler = nullptr;
  std::vector<dl::Param> params;
  // The AE standardizes flattened windows, the LSTM standardizes rows.
  std::size_t scaler_dim = feature_dim.value();
  if (kind.value() == kKindAutoencoder) {
    scaler_dim = window_size.value() * feature_dim.value();
    auto n_hidden = r.u32();
    if (!n_hidden) return n_hidden.error();
    if (n_hidden.value() > r.remaining())
      return Error::make("overflow", "hidden count exceeds payload");
    std::vector<std::size_t> hidden(n_hidden.value());
    for (std::size_t& h : hidden) {
      auto width = r.u32();
      if (!width) return width.error();
      if (width.value() == 0)
        return Error::make("range", "zero hidden width");
      h = width.value();
    }
    auto config = read_config(r);
    if (!config) return config.error();
    auto ae = std::make_unique<AutoencoderDetector>(
        window_size.value(), feature_dim.value(), config.value(),
        std::move(hidden));
    scaler = &ae->scaler_;
    params = ae->model().params();
    detector = std::move(ae);
  } else if (kind.value() == kKindLstm) {
    auto hidden_dim = r.u32();
    if (!hidden_dim) return hidden_dim.error();
    if (hidden_dim.value() == 0)
      return Error::make("range", "zero hidden dim");
    auto config = read_config(r);
    if (!config) return config.error();
    auto lstm = std::make_unique<LstmDetector>(
        window_size.value(), feature_dim.value(), config.value(),
        hidden_dim.value());
    scaler = &lstm->scaler_;
    params = lstm->model().params();
    detector = std::move(lstm);
  } else {
    return Error::make("kind", "unknown detector kind");
  }

  Status scaler_loaded = read_scaler(r, *scaler);
  if (!scaler_loaded.ok()) return scaler_loaded.error();
  if (scaler->fitted() && scaler->dim() != scaler_dim)
    return Error::make("shape", "scaler dim does not match detector shape");
  auto threshold = r.f64();
  if (!threshold) return threshold.error();
  detector->set_threshold(threshold.value());
  auto params_len = r.u32();
  if (!params_len) return params_len.error();
  auto params_blob = r.raw(params_len.value());
  if (!params_blob) return params_blob.error();
  if (!r.exhausted())
    return Error::make("trailing", "trailing bytes after detector state");
  Status loaded = dl::load_params(params, params_blob.value());
  if (!loaded.ok()) return loaded.error();
  return detector;
}

}  // namespace xsec::detect
