#include "detect/ensemble.hpp"

#include <cassert>
#include <cstring>

#include "common/plot.hpp"
#include "common/strings.hpp"
#include "dl/serialize.hpp"

namespace xsec::detect {

std::vector<FeatureGroup> groups_by_category(const FeatureEncoder& encoder) {
  FeatureGroup messages{"messages", {}};
  FeatureGroup identifiers{"identifiers", {}};
  FeatureGroup state{"state", {}};
  FeatureGroup dynamics{"dynamics", {}};  // timing + load
  for (std::size_t i = 0; i < encoder.dim(); ++i) {
    std::string name = encoder.feature_name(i);
    if (starts_with(name, "id."))
      identifiers.columns.push_back(i);
    else if (starts_with(name, "state."))
      state.columns.push_back(i);
    else if (starts_with(name, "dt.") || starts_with(name, "load."))
      dynamics.columns.push_back(i);
    else
      messages.columns.push_back(i);  // msg=* and dir=*
  }
  std::vector<FeatureGroup> groups;
  for (auto& group : {messages, identifiers, state, dynamics})
    if (!group.columns.empty()) groups.push_back(group);
  return groups;
}

EnsembleDetector::EnsembleDetector(std::size_t window_size,
                                   std::size_t feature_dim,
                                   std::vector<FeatureGroup> groups,
                                   EnsembleConfig config)
    : window_size_(window_size),
      feature_dim_(feature_dim),
      groups_(std::move(groups)),
      config_(config) {
  assert(!groups_.empty());
  members_.resize(groups_.size());
  std::uint64_t seed = config_.detector.seed;
  for (std::size_t m = 0; m < groups_.size(); ++m) {
    dl::AutoencoderConfig member_config;
    member_config.input_dim = window_size_ * groups_[m].columns.size();
    // Clamp the member's hidden widths to its (possibly tiny) input.
    member_config.hidden = {
        std::max<std::size_t>(2, std::min(config_.member_hidden.front(),
                                          member_config.input_dim)),
        std::max<std::size_t>(
            2, std::min(config_.member_hidden.back(),
                        member_config.input_dim / 2 + 1))};
    member_config.seed = seed++;
    member_config.sigmoid_output = false;
    members_[m].model = std::make_unique<dl::Autoencoder>(member_config);
  }
}

dl::Matrix EnsembleDetector::slice(const dl::Matrix& standardized,
                                   std::size_t member) const {
  dl::Matrix out;
  slice_into(standardized, member, out);
  return out;
}

void EnsembleDetector::slice_into(const dl::Matrix& standardized,
                                  std::size_t member, dl::Matrix& out) const {
  const auto& columns = groups_[member].columns;
  out.resize(standardized.rows(), window_size_ * columns.size());
  for (std::size_t r = 0; r < standardized.rows(); ++r)
    for (std::size_t t = 0; t < window_size_; ++t)
      for (std::size_t c = 0; c < columns.size(); ++c)
        out.at(r, t * columns.size() + c) =
            standardized.at(r, t * feature_dim_ + columns[c]);
}

std::vector<double> EnsembleDetector::member_scores(
    std::size_t member, const dl::Matrix& standardized) {
  dl::Matrix data = slice(standardized, member);
  dl::Matrix recon = members_[member].model->reconstruct(data);
  const std::size_t sub_dim = groups_[member].columns.size();
  std::vector<double> scores(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    double worst = 0.0;
    for (std::size_t t = 0; t < window_size_; ++t) {
      double acc = 0.0;
      for (std::size_t c = 0; c < sub_dim; ++c) {
        std::size_t col = t * sub_dim + c;
        double d = static_cast<double>(recon.at(r, col)) - data.at(r, col);
        acc += d * d;
      }
      worst = std::max(worst, acc / static_cast<double>(sub_dim));
    }
    scores[r] = worst;
  }
  return scores;
}

void EnsembleDetector::fit(const WindowDataset& benign) {
  assert(benign.window_size() == window_size_);
  assert(benign.feature_dim() == feature_dim_);
  dl::Matrix raw = benign.ae_matrix();
  scaler_.fit(raw);
  dl::Matrix standardized = raw;
  scaler_.apply(standardized);

  dl::TrainConfig train;
  train.epochs = config_.detector.epochs;
  train.batch_size = config_.detector.batch_size;
  train.learning_rate = config_.detector.learning_rate;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    members_[m].model->fit(slice(standardized, m), train);
    std::vector<double> scores = member_scores(m, standardized);
    members_[m].calibration =
        std::max(1e-9, percentile(scores, config_.member_percentile));
  }
  calibrate(combined_scores(raw, nullptr),
            config_.detector.threshold_percentile);
}

std::vector<double> EnsembleDetector::combined_scores(
    const dl::Matrix& raw_windows, std::vector<std::size_t>* dominant) {
  dl::Matrix standardized = raw_windows;
  if (scaler_.fitted()) scaler_.apply(standardized);
  std::vector<double> combined(raw_windows.rows(), 0.0);
  if (dominant) dominant->assign(raw_windows.rows(), 0);
  for (std::size_t m = 0; m < members_.size(); ++m) {
    std::vector<double> scores = member_scores(m, standardized);
    for (std::size_t r = 0; r < scores.size(); ++r) {
      double normalized = scores[r] / members_[m].calibration;
      if (normalized > combined[r]) {
        combined[r] = normalized;
        if (dominant) (*dominant)[r] = m;
      }
    }
  }
  return combined;
}

std::vector<double> EnsembleDetector::score(const WindowDataset& data) {
  dl::Matrix raw = data.ae_matrix();
  return combined_scores(raw, nullptr);
}

double EnsembleDetector::score_window(const float* rows, std::size_t n_rows) {
  double score = 0.0;
  score_windows(rows, feature_dim_, n_rows, 1, &score);
  return score;
}

void EnsembleDetector::score_windows(const float* rows, std::size_t row_dim,
                                     std::size_t rows_per_window,
                                     std::size_t n_windows, double* scores) {
  assert(row_dim == feature_dim_);
  assert(rows_per_window == window_size_);
  (void)row_dim;
  (void)rows_per_window;
  const std::size_t flat = window_size_ * feature_dim_;
  infer_full_.resize(n_windows, flat);
  for (std::size_t w = 0; w < n_windows; ++w)
    std::memcpy(infer_full_.row(w), rows + w * feature_dim_,
                flat * sizeof(float));
  if (scaler_.fitted()) scaler_.apply(infer_full_);

  for (std::size_t w = 0; w < n_windows; ++w) scores[w] = 0.0;
  infer_dominant_.assign(n_windows, 0);
  for (std::size_t m = 0; m < members_.size(); ++m) {
    slice_into(infer_full_, m, infer_slice_);
    const dl::Matrix& recon = members_[m].model->infer(infer_slice_);
    const std::size_t sub_dim = groups_[m].columns.size();
    for (std::size_t r = 0; r < n_windows; ++r) {
      double worst = 0.0;
      for (std::size_t t = 0; t < window_size_; ++t) {
        double acc = 0.0;
        for (std::size_t c = 0; c < sub_dim; ++c) {
          std::size_t col = t * sub_dim + c;
          double d =
              static_cast<double>(recon.at(r, col)) - infer_slice_.at(r, col);
          acc += d * d;
        }
        worst = std::max(worst, acc / static_cast<double>(sub_dim));
      }
      double normalized = worst / members_[m].calibration;
      if (normalized > scores[r]) {
        scores[r] = normalized;
        infer_dominant_[r] = m;
      }
    }
  }
  // Matches what sequential score_window() calls over the batch would
  // leave behind: the attribution of the most recent window.
  last_dominant_ = infer_dominant_[n_windows - 1];
}

std::unique_ptr<AnomalyDetector> EnsembleDetector::clone_for_inference() {
  auto copy = std::make_unique<EnsembleDetector>(window_size_, feature_dim_,
                                                 groups_, config_);
  for (std::size_t m = 0; m < members_.size(); ++m) {
    Status loaded = dl::load_params(copy->members_[m].model->params(),
                                    dl::save_params(members_[m].model->params()));
    if (!loaded.ok()) return nullptr;
    copy->members_[m].calibration = members_[m].calibration;
  }
  copy->scaler_ = scaler_;
  copy->set_threshold(threshold());
  return copy;
}

}  // namespace xsec::detect
