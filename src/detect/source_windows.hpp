// Per-source sliding-window assembly + sharded scoring engine.
//
// The single-stream MobiWatch implementation interleaved every E2 node's
// telemetry into ONE sliding window, so one site's traffic diluted another
// site's anomaly signal (and the identifier/timing features mixed streams
// that are not actually related). This engine fixes that and is the RIC's
// scale-out seam:
//
//   - every telemetry source (E2 node, optionally node+UE) gets its own
//     EncodeContext, record window, feature matrix, and incident state
//     machine — windows never span sources;
//   - each source is pinned to one of N shards by a stable hash of its key
//     (common/hash.hpp), and shard workers encode + score their sources'
//     pending windows in parallel between a dispatch and a barrier
//     (oran/shard_dispatch.hpp);
//   - all simulation-visible effects (incident publication, SDL, tracing)
//     happen on the coordinator, in ingest-arrival order.
//
// Determinism contract: with a fixed seed, scores, incidents, and metric
// exports are byte-identical at ANY shard count (including the inline
// non-threaded mode), because (a) per-source streams are independent and a
// source's scores depend only on its own records, (b) flush points are
// arrival-driven, (c) results are applied in dispatch order, and (d) shard
// registries drain into the exported registry in shard order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "detect/scorer.hpp"
#include "mobiflow/record.hpp"
#include "mobiflow/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oran/shard_dispatch.hpp"
#include "oran/spsc_ring.hpp"

namespace xsec::detect {

/// What one "source" (one sliding window + incident machine) keys on.
enum class SourceKeyMode {
  /// One source per E2 node: every record of a site shares one window.
  /// This preserves the cross-UE load features (setup rate, pending
  /// auth count) the DoS detectors rely on, and is the default.
  kNode,
  /// One source per (node, UE): per-device windows for UE-targeted
  /// analyses. DoS floods that spray fresh UE ids complete few per-UE
  /// windows, so keep kNode for the paper's detection scenarios.
  kNodeUe,
};

struct SourceKey {
  std::uint64_t node_id = 0;
  std::uint64_t ue_id = 0;

  friend bool operator<(const SourceKey& a, const SourceKey& b) {
    if (a.node_id != b.node_id) return a.node_id < b.node_id;
    return a.ue_id < b.ue_id;
  }
  friend bool operator==(const SourceKey& a, const SourceKey& b) {
    return a.node_id == b.node_id && a.ue_id == b.ue_id;
  }
};

struct SourceWindowConfig {
  std::size_t window_size = 5;
  /// Records of preceding context attached to each incident.
  std::size_t context_records = 25;
  /// Consecutive quiet windows that close an open incident.
  std::size_t incident_close_gap = 6;
  SourceKeyMode key_mode = SourceKeyMode::kNode;
  /// RIC shards. 1 = inline scoring on the coordinator (no threads);
  /// >1 starts one worker per shard when the detector supports
  /// clone_for_inference(), else falls back to inline dispatch.
  std::size_t shards = 1;
  /// Ingested records between automatic flushes. 0 = only flush() calls
  /// (the pipeline flushes at every indication boundary, preserving the
  /// single-stream engine's observable cadence); benches set a larger
  /// batch so one barrier amortizes over many sources.
  std::size_t flush_records = 0;
  /// Extra feature rows per source beyond window + context (windows
  /// accumulate in the slack between flushes before one compaction).
  std::size_t batch_slack = 32;
  /// Per-shard SPSC ring capacity.
  std::size_t ring_capacity = 1024;
  /// Record wall-clock scoring latency in "dl.score_ns" (off by default:
  /// wall-clock breaks byte-stable exports).
  bool time_scoring = false;
  /// Additionally mirror each shard's throughput into
  /// "mobiwatch.shard<k>.*" metrics. Off by default: per-shard names
  /// would (correctly) differ across shard counts, so the determinism
  /// suites keep this disabled and the scale bench turns it on.
  bool per_shard_metrics = false;
};

/// All state belonging to one telemetry source. The coordinator owns it
/// except between dispatch and barrier, when exactly one shard worker
/// encodes/scores it (sources never migrate shards, so no two workers
/// ever touch the same source).
struct SourceState {
  SourceKey key;
  std::size_t shard = 0;
  EncodeContext ctx;
  /// recent[0, filled) are encoded into feats rows; the next `unencoded`
  /// entries await the shard worker.
  std::deque<mobiflow::Record> recent;
  dl::Matrix feats;
  std::size_t filled = 0;
  std::size_t unencoded = 0;
  /// Windows completed but not yet applied (worker-maintained).
  std::size_t pending = 0;
  std::vector<double> scores;
  bool dirty = false;
  // Open-incident state (coordinator only).
  bool burst_active = false;
  std::size_t burst_gap = 0;
  double burst_peak = 0.0;
  mobiflow::Trace burst_window;
  mobiflow::Trace burst_context;
};

class SourceWindowEngine {
 public:
  /// A closed anomaly burst on one source.
  struct Incident {
    SourceKey source;
    double peak_score = 0.0;
    mobiflow::Trace window;
    mobiflow::Trace context;
  };
  using IncidentSink = std::function<void(Incident)>;
  /// Per-window tap for the model-lifecycle subsystem: invoked on the
  /// coordinator for EVERY applied window, in arrival order (so the call
  /// sequence is shard-count-invariant). `rows` points at the window's
  /// `n_rows` RAW (unstandardized) feature rows of width `row_dim`; the
  /// pointer is only valid for the duration of the call. Observers must
  /// not re-enter the engine (no flush/install from inside the callback).
  using ScoreObserver =
      std::function<void(const SourceKey& source, const float* rows,
                         std::size_t row_dim, std::size_t n_rows,
                         double score, bool anomalous)>;
  /// Deferred observability lookup: the engine binds spans/global metrics
  /// on first flush so it works before its host xApp is attached to a RIC.
  using ObsProvider = std::function<obs::Observability*()>;

  explicit SourceWindowEngine(SourceWindowConfig config = {});
  ~SourceWindowEngine();

  SourceWindowEngine(const SourceWindowEngine&) = delete;
  SourceWindowEngine& operator=(const SourceWindowEngine&) = delete;

  void set_obs_provider(ObsProvider provider) {
    obs_provider_ = std::move(provider);
  }
  void set_incident_sink(IncidentSink sink) { sink_ = std::move(sink); }
  void set_score_observer(ScoreObserver observer) {
    score_observer_ = std::move(observer);
  }
  void set_incident_close_gap(std::size_t gap) {
    config_.incident_close_gap = gap;
  }

  /// (Re-)installs the detector + encoder. Existing sources' window
  /// assembly is reset (records in flight are dropped, as in the
  /// single-stream engine); open incidents stay open.
  void install(std::shared_ptr<AnomalyDetector> detector,
               FeatureEncoder encoder);

  bool has_detector() const { return detector_ != nullptr; }
  const AnomalyDetector* detector() const { return detector_.get(); }
  const FeatureEncoder* encoder() const { return encoder_.get(); }
  /// True when worker threads score in parallel (shards > 1 and the
  /// detector supports per-shard inference replicas).
  bool parallel() const { return executor_ && executor_->threaded(); }
  std::size_t shard_count() const { return config_.shards; }
  std::size_t source_count() const { return sources_.size(); }
  const SourceWindowConfig& config() const { return config_; }

  /// Appends one record to its source's window. May trigger an automatic
  /// flush (slack exhausted or flush_records reached). No-op without a
  /// detector (collection mode).
  void ingest(std::uint64_t node_id, const mobiflow::Record& record);

  /// Scores every pending window across all dirty sources: dispatch to
  /// shards, barrier, then apply incident state machines in arrival order
  /// and fold shard-local metrics into the exported registry.
  void flush();

  /// Telemetry discontinuity on `node_id`: flushes, reports that node's
  /// open incidents (their pre-gap evidence is intact), and drops its
  /// sources' windows so no scored window spans the gap.
  void quarantine_node(std::uint64_t node_id);

  /// Flushes and reports every open incident (end-of-capture).
  void close_open_incidents();

  bool any_incident_open() const;

  // --- shard worker entry points (public for the executor; not API) ---
  struct ScoreTask : oran::HasTag<0x5c01> {
    SourceState* source = nullptr;
  };
  /// Installs the shard's active detector replica; delivered through the
  /// shard's own ring so the swap serializes with in-flight ScoreTasks.
  struct DetectorSwap : oran::HasTag<0x5c02> {
    AnomalyDetector* detector = nullptr;
  };
  void on_message(std::size_t shard, const ScoreTask& task);
  void on_message(std::size_t shard, const DetectorSwap& swap);

 private:
  using Slot = oran::TaggedSlot<ScoreTask, DetectorSwap>;
  using Executor = oran::ShardExecutor<SourceWindowEngine, Slot>;

  /// Per-shard scoring context: the detector replica and the shard-local
  /// metric handles (bound into this shard's private registry, so workers
  /// never write a cache line another shard reads).
  struct ShardCtx {
    std::unique_ptr<AnomalyDetector> replica;
    AnomalyDetector* active = nullptr;
    obs::Counter* windows_scored = nullptr;
    obs::Histogram* batch_rows = nullptr;
    obs::Histogram* score_ns = nullptr;
    // Optional per-shard mirrors (per_shard_metrics).
    obs::Counter* shard_windows = nullptr;
    obs::Histogram* shard_batch_rows = nullptr;
    obs::Histogram* shard_score_ns = nullptr;
  };

  SourceState& source_for(std::uint64_t node_id,
                          const mobiflow::Record& record);
  void ensure_buffers(SourceState& s);
  void reset_assembly(SourceState& s);
  void compact(SourceState& s);
  void setup_shards();
  void ensure_bound();
  void apply_score(SourceState& s, double score, std::size_t end);
  void publish_incident(SourceState& s);

  SourceWindowConfig config_;
  std::shared_ptr<AnomalyDetector> detector_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::size_t needed_ = 0;
  std::size_t keep_ = 0;
  std::size_t capacity_ = 0;
  std::size_t max_windows_ = 0;

  std::map<SourceKey, std::unique_ptr<SourceState>> sources_;
  /// Sources with un-flushed work, in first-touch arrival order — the
  /// dispatch and apply order, which makes incident ordering independent
  /// of the shard layout.
  std::vector<SourceState*> dirty_;
  std::size_t since_flush_ = 0;

  std::vector<ShardCtx> shard_ctx_;
  std::unique_ptr<obs::ShardedMetrics> sharded_;
  std::unique_ptr<Executor> executor_;

  ObsProvider obs_provider_;
  obs::Observability* obs_ = nullptr;
  obs::Counter* anomalous_windows_ = nullptr;
  IncidentSink sink_;
  ScoreObserver score_observer_;
};

}  // namespace xsec::detect
