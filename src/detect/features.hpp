// Telemetry featurization: MobiFlow records -> model input vectors.
//
// Categorical fields are one-hot encoded (paper §3.2: "all categorical
// variables within each sequence S is one-hot encoded"); identifier fields
// are turned into the *relational* indicators the attacks disturb (fresh
// RNTI, S-TMSI replayed across UE contexts, plaintext SUPI), since raw
// identifier values carry no distributional meaning. A sliding window of
// size N converts the record stream into model samples.
//
// One-hot indices are the vocab enum values themselves — encoding a record
// is a handful of array stores with no string lookups, and the batched
// entry points write rows straight into a caller-owned dl::Matrix so the
// agent -> detector hot path performs no per-record heap allocation.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "dl/lstm.hpp"
#include "dl/tensor.hpp"
#include "mobiflow/record.hpp"
#include "mobiflow/trace.hpp"

namespace xsec::detect {

struct FeatureConfig {
  bool messages = true;     // message one-hot + direction + protocol
  bool identifiers = true;  // RNTI/TMSI/SUPI relational indicators
  bool state = true;        // cipher/integrity/establishment-cause one-hots
  bool timing = true;       // log-bucketed inter-arrival time
  /// Cell-load indicators: how many contexts are mid-authentication and
  /// how many setups arrived recently. These capture the paper's
  /// "multivariate anomalies" (Figure 2b): a DoS is joint pressure on
  /// message sequence AND device-parameter streams.
  bool load = true;
};

/// Streaming state the identifier features need (what "has been seen" so
/// far in the record stream). One context per trace pass.
class EncodeContext {
 public:
  void reset();

  std::set<std::uint16_t> seen_rntis;
  /// s_tmsi -> set of *currently active* CU ue ids that presented it.
  /// Ownership ends when the context is released, so benign sequential
  /// GUTI reuse does not look like the Blind DoS concurrent replay.
  std::map<std::uint64_t, std::set<std::uint64_t>> tmsi_owners;
  /// Reverse index for release-time cleanup: ue id -> tmsi it holds.
  std::map<std::uint64_t, std::uint64_t> ue_tmsi;
  std::int64_t last_timestamp_us = -1;
  /// UE contexts with an outstanding authentication challenge.
  std::set<std::uint64_t> pending_auth;
  /// Timestamps of recent RRCSetupRequests (pruned to the rate window).
  std::deque<std::int64_t> recent_setups;
};

class FeatureEncoder {
 public:
  explicit FeatureEncoder(FeatureConfig config = {});

  std::size_t dim() const { return dim_; }
  const FeatureConfig& config() const { return config_; }

  /// Encodes one record into out[0, dim()), updating the streaming
  /// context. `out` is overwritten (no pre-zeroing needed). This is the
  /// allocation-free hot path.
  void encode_into(const mobiflow::Record& record, EncodeContext& ctx,
                   float* out) const;

  /// Encodes one record, updating the streaming context.
  std::vector<float> encode(const mobiflow::Record& record,
                            EncodeContext& ctx) const;

  /// Encodes a batch of records into consecutive rows of a preallocated
  /// matrix starting at `first_row` (out must have dim() columns and at
  /// least first_row + records.size() rows).
  void encode_batch(std::span<const mobiflow::Record> records,
                    EncodeContext& ctx, dl::Matrix& out,
                    std::size_t first_row = 0) const;

  /// Encodes a whole trace in order (fresh context) into one matrix row
  /// per record.
  dl::Matrix encode_trace(const mobiflow::Trace& trace) const;

  /// Human-readable name of feature column `i` (for explanations).
  std::string feature_name(std::size_t i) const;

 private:
  FeatureConfig config_;
  std::vector<std::string> names_;
  std::size_t dim_ = 0;
};

/// A windowed dataset over one encoded trace. Features live in one
/// contiguous row-major matrix (a window of rows is therefore one
/// contiguous float span).
class WindowDataset {
 public:
  WindowDataset(dl::Matrix features, std::vector<bool> record_labels,
                std::size_t window_size);

  static WindowDataset from_trace(const mobiflow::Trace& trace,
                                  const FeatureEncoder& encoder,
                                  std::size_t window_size);

  /// Builds a combined dataset from several independent captures. Each
  /// capture is encoded with its own streaming context and windows never
  /// straddle capture boundaries (the concatenation gets a boundary marker
  /// internally).
  static WindowDataset from_traces(const std::vector<mobiflow::Trace>& traces,
                                   const FeatureEncoder& encoder,
                                   std::size_t window_size);

  std::size_t window_size() const { return window_; }
  std::size_t feature_dim() const { return dim_; }
  std::size_t record_count() const { return features_.rows(); }

  /// Autoencoder samples: flattened windows of N consecutive records.
  /// Row i covers records [i, i+N-1]. Empty if fewer than N records.
  dl::Matrix ae_matrix() const;
  std::size_t ae_sample_count() const;
  /// Window labels for AE rows (malicious iff any covered record is).
  std::vector<bool> ae_labels() const;

  /// LSTM samples: window [i, i+N-1] predicting record i+N.
  std::vector<dl::SequenceSample> lstm_samples() const;
  std::size_t lstm_sample_count() const;
  std::vector<bool> lstm_labels() const;

  const dl::Matrix& features() const { return features_; }
  const std::vector<bool>& record_labels() const { return labels_; }

 private:
  /// Window start indices valid for AE (window fits in one segment) and
  /// for LSTM (window + target fit).
  std::vector<std::size_t> ae_starts_;
  std::vector<std::size_t> lstm_starts_;
  void index_segment(std::size_t begin, std::size_t end);

  dl::Matrix features_;
  std::vector<bool> labels_;
  std::size_t window_;
  std::size_t dim_;
};

}  // namespace xsec::detect
