#include "detect/source_windows.hpp"

#include <chrono>
#include <cstring>
#include <optional>

#include "common/hash.hpp"

namespace xsec::detect {

SourceWindowEngine::SourceWindowEngine(SourceWindowConfig config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_slack == 0) config_.batch_slack = 1;
}

SourceWindowEngine::~SourceWindowEngine() {
  // Joins the shard workers before any state they point into dies.
  executor_.reset();
}

void SourceWindowEngine::install(std::shared_ptr<AnomalyDetector> detector,
                                 FeatureEncoder encoder) {
  detector_ = std::move(detector);
  encoder_ = std::make_unique<FeatureEncoder>(std::move(encoder));
  needed_ = detector_->rows_needed(config_.window_size);
  keep_ = config_.context_records + needed_;
  capacity_ = keep_ + config_.batch_slack;
  max_windows_ = capacity_ - needed_ + 1;
  setup_shards();
  // A hot swap drops in-flight window assembly (records are replayable
  // from the SDL) but keeps open incidents open: their evidence predates
  // the swap and still needs reporting.
  for (auto& [key, s] : sources_) reset_assembly(*s);
  dirty_.clear();
  since_flush_ = 0;
}

void SourceWindowEngine::setup_shards() {
  // Tear down the previous generation first: workers must be joined before
  // the replicas they score through are replaced.
  executor_.reset();
  shard_ctx_.clear();
  sharded_ = std::make_unique<obs::ShardedMetrics>(config_.shards);

  // One inference replica per shard. A detector that cannot be cloned
  // (stateful test scorers) forces inline dispatch: same results, no
  // parallelism.
  bool threaded = config_.shards > 1;
  std::vector<std::unique_ptr<AnomalyDetector>> replicas;
  if (threaded) {
    for (std::size_t k = 0; k < config_.shards; ++k) {
      auto replica = detector_->clone_for_inference();
      if (!replica) {
        threaded = false;
        replicas.clear();
        break;
      }
      replicas.push_back(std::move(replica));
    }
  }

  shard_ctx_.resize(config_.shards);
  for (std::size_t k = 0; k < config_.shards; ++k) {
    ShardCtx& ctx = shard_ctx_[k];
    if (threaded) ctx.replica = std::move(replicas[k]);
    obs::MetricsRegistry& local = sharded_->shard(k);
    ctx.windows_scored = &local.counter("mobiwatch.windows_scored");
    ctx.batch_rows = &local.histogram("dl.batch_rows");
    ctx.score_ns = &local.histogram("dl.score_ns");
    if (config_.per_shard_metrics) {
      const std::string prefix = "mobiwatch.shard" + std::to_string(k);
      ctx.shard_windows = &local.counter(prefix + ".windows_scored");
      ctx.shard_batch_rows = &local.histogram(prefix + ".batch_rows");
      ctx.shard_score_ns = &local.histogram(prefix + ".score_ns");
    }
  }

  Executor::Config exec_config;
  exec_config.shards = config_.shards;
  exec_config.threaded = threaded;
  exec_config.ring_capacity = config_.ring_capacity;
  executor_ = std::make_unique<Executor>(exec_config, this);

  // Announce the active detector to each shard through its own ring so the
  // swap is ordered with that shard's scoring tasks.
  for (std::size_t k = 0; k < config_.shards; ++k) {
    DetectorSwap swap;
    swap.detector =
        shard_ctx_[k].replica ? shard_ctx_[k].replica.get() : detector_.get();
    executor_->dispatch(k, swap);
  }
  executor_->barrier();
}

void SourceWindowEngine::ensure_bound() {
  if (obs_ != nullptr || !obs_provider_) return;
  obs_ = obs_provider_();
  if (obs_ != nullptr)
    anomalous_windows_ = &obs_->metrics.counter("mobiwatch.anomalous_windows");
}

SourceState& SourceWindowEngine::source_for(std::uint64_t node_id,
                                            const mobiflow::Record& record) {
  SourceKey key;
  key.node_id = node_id;
  key.ue_id = config_.key_mode == SourceKeyMode::kNodeUe ? record.ue_id : 0;
  auto it = sources_.find(key);
  if (it == sources_.end()) {
    auto state = std::make_unique<SourceState>();
    state->key = key;
    state->shard =
        shard_of(hash_combine(key.node_id, key.ue_id), config_.shards);
    ensure_buffers(*state);
    it = sources_.emplace(key, std::move(state)).first;
  }
  return *it->second;
}

void SourceWindowEngine::ensure_buffers(SourceState& s) {
  if (s.feats.rows() != capacity_ || s.feats.cols() != encoder_->dim())
    s.feats = dl::Matrix(capacity_, encoder_->dim());
  if (s.scores.size() < max_windows_) s.scores.resize(max_windows_);
}

void SourceWindowEngine::reset_assembly(SourceState& s) {
  s.recent.clear();
  s.filled = 0;
  s.unencoded = 0;
  s.pending = 0;
  // The discarded records will never be scored, so the source must not
  // stay marked dirty: install() drops it from dirty_ without flushing,
  // and a stale flag would keep ingest() from ever re-listing it.
  s.dirty = false;
  s.ctx.reset();
  ensure_buffers(s);
}

void SourceWindowEngine::compact(SourceState& s) {
  // Keep the history the NEXT window needs: its context plus its first
  // needed-1 rows. Only called with nothing pending (post-flush).
  const std::size_t retain = keep_ - 1;
  if (s.filled <= retain) return;
  const std::size_t drop = s.filled - retain;
  std::memmove(s.feats.row(0), s.feats.row(drop),
               retain * s.feats.cols() * sizeof(float));
  s.recent.erase(s.recent.begin(),
                 s.recent.begin() + static_cast<std::ptrdiff_t>(drop));
  s.filled = retain;
}

void SourceWindowEngine::ingest(std::uint64_t node_id,
                                const mobiflow::Record& record) {
  if (!detector_ || !encoder_) return;  // collection mode
  SourceState& s = source_for(node_id, record);
  if (s.filled + s.unencoded == capacity_) {
    // This source ran out of slack: a flush point. Arrival-driven (depends
    // only on this source's own stream), so it is shard-count-invariant.
    flush();
    compact(s);
  }
  s.recent.push_back(record);
  ++s.unencoded;
  if (!s.dirty) {
    s.dirty = true;
    dirty_.push_back(&s);
  }
  ++since_flush_;
  if (config_.flush_records != 0 && since_flush_ >= config_.flush_records)
    flush();
}

void SourceWindowEngine::flush() {
  since_flush_ = 0;
  if (dirty_.empty()) return;
  ensure_bound();
  {
    // The scoring phase: everything between here and the barrier runs on
    // the shard workers. Spans stay coordinator-side.
    std::optional<obs::Span> scoring;
    if (obs_ != nullptr) scoring.emplace(obs_->tracer.begin("mobiwatch.score"));
    for (SourceState* s : dirty_) {
      ScoreTask task;
      task.source = s;
      executor_->dispatch(s->shard, task);
    }
    executor_->barrier();
  }
  // Apply phase, in dispatch (arrival) order: the incident machines and
  // their publication order are independent of the shard layout.
  for (SourceState* s : dirty_) {
    s->dirty = false;
    const std::size_t n = s->pending;
    s->pending = 0;
    const std::size_t first_end = s->filled - n;
    for (std::size_t j = 0; j < n; ++j)
      apply_score(*s, s->scores[j], first_end + j);
  }
  dirty_.clear();
  // Merge barrier: fold every shard's private instruments into the one
  // exported registry, always in shard order. Sums and histogram buckets
  // are partition-invariant, so the export matches a single-shard run.
  if (obs_ != nullptr) sharded_->drain_into(obs_->metrics);
}

void SourceWindowEngine::on_message(std::size_t shard, const ScoreTask& task) {
  SourceState& s = *task.source;
  ShardCtx& ctx = shard_ctx_[shard];
  // Encode this source's deferred rows in arrival order. Safe off the
  // coordinator: the EncodeContext is per-source and exactly one task per
  // source is in flight.
  while (s.unencoded > 0) {
    const mobiflow::Record& record = s.recent[s.filled];
    encoder_->encode_into(record, s.ctx, s.feats.row(s.filled));
    ++s.filled;
    --s.unencoded;
    if (s.filled >= needed_) ++s.pending;
  }
  const std::size_t n = s.pending;
  if (n == 0) return;
  const std::size_t first_end = s.filled - n;
  const float* rows = s.feats.row(first_end - needed_ + 1);
  ctx.windows_scored->inc(n);
  ctx.batch_rows->observe(n);
  if (ctx.shard_windows != nullptr) {
    ctx.shard_windows->inc(n);
    ctx.shard_batch_rows->observe(n);
  }
  if (config_.time_scoring) {
    auto t0 = std::chrono::steady_clock::now();
    ctx.active->score_windows(rows, s.feats.cols(), needed_, n,
                              s.scores.data());
    auto t1 = std::chrono::steady_clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    ctx.score_ns->observe(ns);
    if (ctx.shard_score_ns != nullptr) ctx.shard_score_ns->observe(ns);
  } else {
    ctx.active->score_windows(rows, s.feats.cols(), needed_, n,
                              s.scores.data());
  }
}

void SourceWindowEngine::on_message(std::size_t shard,
                                    const DetectorSwap& swap) {
  shard_ctx_[shard].active = swap.detector;
}

void SourceWindowEngine::apply_score(SourceState& s, double score,
                                     std::size_t end) {
  const mobiflow::Record& record = s.recent[end];
  const bool anomalous = detector_->is_anomalous(score);
  if (anomalous && anomalous_windows_ != nullptr) anomalous_windows_->inc();
  if (score_observer_)
    score_observer_(s.key, s.feats.row(end - needed_ + 1), s.feats.cols(),
                    needed_, score, anomalous);

  if (s.burst_active) {
    // The incident stays open while anomalous windows keep arriving (and
    // across short quiet gaps); every record in that span belongs to it.
    s.burst_window.add(record);
    if (anomalous) {
      s.burst_gap = 0;
      s.burst_peak = std::max(s.burst_peak, score);
    } else if (++s.burst_gap > config_.incident_close_gap) {
      publish_incident(s);
    }
    return;
  }

  if (!anomalous) return;

  // Open a new incident: the window that tripped the detector starts it,
  // the up-to-context_records preceding records are its context.
  s.burst_active = true;
  s.burst_gap = 0;
  s.burst_peak = score;
  s.burst_window = mobiflow::Trace();
  s.burst_context = mobiflow::Trace();
  const std::size_t window_start = end - needed_ + 1;
  const std::size_t context_start =
      window_start > config_.context_records
          ? window_start - config_.context_records
          : 0;
  for (std::size_t i = context_start; i < window_start; ++i)
    s.burst_context.add(s.recent[i]);
  for (std::size_t i = window_start; i <= end; ++i)
    s.burst_window.add(s.recent[i]);
}

void SourceWindowEngine::publish_incident(SourceState& s) {
  if (!s.burst_active) return;
  s.burst_active = false;
  Incident incident;
  incident.source = s.key;
  incident.peak_score = s.burst_peak;
  incident.window = std::move(s.burst_window);
  incident.context = std::move(s.burst_context);
  s.burst_window = mobiflow::Trace();
  s.burst_context = mobiflow::Trace();
  if (sink_) sink_(std::move(incident));
}

void SourceWindowEngine::quarantine_node(std::uint64_t node_id) {
  if (!detector_) return;
  // Pre-gap records already formed complete windows — score them before
  // the quarantine discards their rows.
  flush();
  for (auto& [key, s] : sources_) {
    if (key.node_id != node_id) continue;
    // An open incident's evidence (pre-gap records) is intact — report it
    // rather than tainting it with post-gap telemetry.
    publish_incident(*s);
    reset_assembly(*s);
  }
}

void SourceWindowEngine::close_open_incidents() {
  if (!detector_) return;
  flush();
  for (auto& [key, s] : sources_) publish_incident(*s);
}

bool SourceWindowEngine::any_incident_open() const {
  for (const auto& [key, s] : sources_)
    if (s->burst_active) return true;
  return false;
}

}  // namespace xsec::detect
