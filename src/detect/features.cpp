#include "detect/features.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace xsec::detect {

namespace vocab = mobiflow::vocab;
using vocab::MsgType;

void EncodeContext::reset() {
  seen_rntis.clear();
  tmsi_owners.clear();
  ue_tmsi.clear();
  last_timestamp_us = -1;
  pending_auth.clear();
  recent_setups.clear();
}

namespace {
constexpr std::size_t kTimingBuckets = 6;
constexpr std::size_t kLoadBuckets = 6;
constexpr std::int64_t kSetupRateWindowUs = 100'000;  // 100ms

std::size_t load_bucket(std::size_t count) {
  // 0, 1, 2, 3-4, 5-8, 9+
  if (count == 0) return 0;
  if (count == 1) return 1;
  if (count == 2) return 2;
  if (count <= 4) return 3;
  if (count <= 8) return 4;
  return 5;
}

std::size_t timing_bucket(std::int64_t delta_us) {
  // log10 buckets: <100us, <1ms, <10ms, <100ms, <1s, >=1s
  if (delta_us < 100) return 0;
  if (delta_us < 1'000) return 1;
  if (delta_us < 10'000) return 2;
  if (delta_us < 100'000) return 3;
  if (delta_us < 1'000'000) return 4;
  return 5;
}
}  // namespace

FeatureEncoder::FeatureEncoder(FeatureConfig config) : config_(config) {
  if (config_.messages) {
    // Column index == MsgType value: the explicit unknown bucket first,
    // then RRC and NAS message types in vocab order.
    names_.push_back("msg=unknown");
    for (std::size_t m = 1; m < vocab::kMsgTypeCount; ++m) {
      auto type = static_cast<MsgType>(m);
      std::string proto(vocab::to_name(vocab::protocol_of(type)));
      names_.push_back("msg=" + proto + ":" +
                       std::string(vocab::to_name(type)));
    }
    names_.push_back("dir=UL");
  }
  if (config_.identifiers) {
    names_.push_back("id.rnti_new");
    names_.push_back("id.tmsi_present");
    names_.push_back("id.tmsi_replayed_other_ue");
    names_.push_back("id.supi_plaintext");
    names_.push_back("id.suci_null_scheme");
    names_.push_back("id.release_incomplete");
  }
  if (config_.state) {
    // Column index == enum value within each block (0 = not-yet-known).
    names_.push_back("state.cipher_unknown");
    for (std::size_t a = 1; a < vocab::kCipherAlgCount; ++a)
      names_.push_back(
          "state.cipher=" +
          std::string(vocab::to_name(static_cast<vocab::CipherAlg>(a))));
    names_.push_back("state.integrity_unknown");
    for (std::size_t a = 1; a < vocab::kIntegrityAlgCount; ++a)
      names_.push_back(
          "state.integrity=" +
          std::string(vocab::to_name(static_cast<vocab::IntegrityAlg>(a))));
    names_.push_back("state.cause_unknown");
    for (std::size_t c = 1; c < vocab::kEstablishmentCauseCount; ++c)
      names_.push_back(
          "state.cause=" +
          std::string(
              vocab::to_name(static_cast<vocab::EstablishmentCause>(c))));
  }
  if (config_.timing) {
    for (std::size_t b = 0; b < kTimingBuckets; ++b)
      names_.push_back("dt.bucket" + std::to_string(b));
  }
  if (config_.load) {
    for (std::size_t b = 0; b < kLoadBuckets; ++b)
      names_.push_back("load.pending_auth" + std::to_string(b));
    for (std::size_t b = 0; b < kLoadBuckets; ++b)
      names_.push_back("load.setup_rate" + std::to_string(b));
  }
  dim_ = names_.size();
}

void FeatureEncoder::encode_into(const mobiflow::Record& record,
                                 EncodeContext& ctx, float* out) const {
  std::fill(out, out + dim_, 0.0f);
  std::size_t base = 0;

  if (config_.messages) {
    // One-hot by enum value; out-of-range values (possible only via a
    // corrupted cast) fall into the explicit unknown column 0 instead of
    // silently encoding as all-zeros.
    auto m = static_cast<std::size_t>(record.msg);
    out[m < vocab::kMsgTypeCount ? m : 0] = 1.0f;
    base = vocab::kMsgTypeCount;
    if (record.direction == vocab::Direction::kUl) out[base] = 1.0f;
    base += 1;
  }

  if (config_.identifiers) {
    bool rnti_new =
        record.rnti != 0 && !ctx.seen_rntis.count(record.rnti);
    if (record.rnti != 0) ctx.seen_rntis.insert(record.rnti);
    out[base + 0] = rnti_new ? 1.0f : 0.0f;

    if (record.s_tmsi != 0) {
      out[base + 1] = 1.0f;
      // Ownership is established by UPLINK presentations only; broadcast
      // paging and downlink allocations must not create owners.
      if (record.direction == vocab::Direction::kUl) {
        auto& owners = ctx.tmsi_owners[record.s_tmsi];
        owners.insert(record.ue_id);
        ctx.ue_tmsi[record.ue_id] = record.s_tmsi;
        // Replay = the identifier is simultaneously live in more than one
        // context (fires on every record of every involved context while
        // the conflict persists).
        out[base + 2] = owners.size() >= 2 ? 1.0f : 0.0f;
      }
    }
    if (record.msg == MsgType::kRrcRelease) {
      auto held = ctx.ue_tmsi.find(record.ue_id);
      if (held != ctx.ue_tmsi.end()) {
        auto owners_it = ctx.tmsi_owners.find(held->second);
        if (owners_it != ctx.tmsi_owners.end())
          owners_it->second.erase(record.ue_id);
        ctx.ue_tmsi.erase(held);
      }
    }
    if (!record.supi_plain.empty()) out[base + 3] = 1.0f;
    // A null-scheme SUCI is detectable from the identity string itself.
    if (!record.suci.empty() && record.suci.find("-0-") != std::string::npos)
      out[base + 4] = 1.0f;
    // A context torn down before it ever reached a security context: the
    // footprint of garbage-collected half-open (DoS) connections.
    if (record.msg == MsgType::kRrcRelease &&
        record.cipher_alg == vocab::CipherAlg::kNone && record.s_tmsi == 0)
      out[base + 5] = 1.0f;
    base += 6;
  }

  if (config_.state) {
    // Each block's column offset is the enum value itself; value 0 (kNone)
    // is the "unknown / not yet negotiated" column.
    out[base + static_cast<std::size_t>(record.cipher_alg)] = 1.0f;
    base += vocab::kCipherAlgCount;
    out[base + static_cast<std::size_t>(record.integrity_alg)] = 1.0f;
    base += vocab::kIntegrityAlgCount;
    out[base + static_cast<std::size_t>(record.establishment_cause)] = 1.0f;
    base += vocab::kEstablishmentCauseCount;
  }

  if (config_.timing) {
    // The first record of a stream has no predecessor; use a typical
    // inter-session gap so stream starts don't land in the rarest bucket
    // (which would make the first window of every capture an outlier).
    std::int64_t delta =
        ctx.last_timestamp_us < 0 ? 20'000
                                  : record.timestamp_us - ctx.last_timestamp_us;
    ctx.last_timestamp_us = record.timestamp_us;
    out[base + timing_bucket(delta)] = 1.0f;
    base += kTimingBuckets;
  }

  if (config_.load) {
    // Update the load trackers from this record.
    switch (record.msg) {
      case MsgType::kAuthenticationRequest:
        ctx.pending_auth.insert(record.ue_id);
        break;
      case MsgType::kAuthenticationResponse:
      case MsgType::kAuthenticationFailure:
      case MsgType::kAuthenticationReject:
      case MsgType::kRrcRelease:
        ctx.pending_auth.erase(record.ue_id);
        break;
      default:
        break;
    }
    if (record.msg == MsgType::kRrcSetupRequest)
      ctx.recent_setups.push_back(record.timestamp_us);
    while (!ctx.recent_setups.empty() &&
           ctx.recent_setups.front() <
               record.timestamp_us - kSetupRateWindowUs)
      ctx.recent_setups.pop_front();

    // Emit the buckets only on connection-establishment messages: those
    // are the records a storm consists of, so the anomaly stays attached
    // to the attack records instead of every bystander during the storm.
    bool establishment = record.msg == MsgType::kRrcSetupRequest ||
                         record.msg == MsgType::kRrcSetup ||
                         record.msg == MsgType::kRrcSetupComplete ||
                         record.msg == MsgType::kRegistrationRequest ||
                         record.msg == MsgType::kAuthenticationRequest;
    if (establishment) {
      out[base + load_bucket(ctx.pending_auth.size())] = 1.0f;
      out[base + kLoadBuckets + load_bucket(ctx.recent_setups.size())] = 1.0f;
    }
    base += 2 * kLoadBuckets;
  }

  assert(base == dim_);
}

std::vector<float> FeatureEncoder::encode(const mobiflow::Record& record,
                                          EncodeContext& ctx) const {
  std::vector<float> out(dim_);
  encode_into(record, ctx, out.data());
  return out;
}

void FeatureEncoder::encode_batch(std::span<const mobiflow::Record> records,
                                  EncodeContext& ctx, dl::Matrix& out,
                                  std::size_t first_row) const {
  assert(out.cols() == dim_);
  assert(first_row + records.size() <= out.rows());
  for (std::size_t i = 0; i < records.size(); ++i)
    encode_into(records[i], ctx, out.row(first_row + i));
}

dl::Matrix FeatureEncoder::encode_trace(const mobiflow::Trace& trace) const {
  EncodeContext ctx;
  dl::Matrix out(trace.size(), dim_);
  std::size_t row = 0;
  for (const auto& entry : trace.entries())
    encode_into(entry.record, ctx, out.row(row++));
  return out;
}

std::string FeatureEncoder::feature_name(std::size_t i) const {
  assert(i < names_.size());
  return names_[i];
}

WindowDataset::WindowDataset(dl::Matrix features,
                             std::vector<bool> record_labels,
                             std::size_t window_size)
    : features_(std::move(features)),
      labels_(std::move(record_labels)),
      window_(window_size),
      dim_(features_.cols()) {
  assert(features_.rows() == labels_.size());
  assert(window_ > 0);
  index_segment(0, features_.rows());
}

void WindowDataset::index_segment(std::size_t begin, std::size_t end) {
  if (end - begin >= window_)
    for (std::size_t s = begin; s + window_ <= end; ++s)
      ae_starts_.push_back(s);
  if (end - begin > window_)
    for (std::size_t s = begin; s + window_ < end; ++s)
      lstm_starts_.push_back(s);
}

WindowDataset WindowDataset::from_trace(const mobiflow::Trace& trace,
                                        const FeatureEncoder& encoder,
                                        std::size_t window_size) {
  std::vector<bool> labels;
  labels.reserve(trace.size());
  for (const auto& entry : trace.entries()) labels.push_back(entry.malicious);
  return WindowDataset(encoder.encode_trace(trace), std::move(labels),
                       window_size);
}

WindowDataset WindowDataset::from_traces(
    const std::vector<mobiflow::Trace>& traces, const FeatureEncoder& encoder,
    std::size_t window_size) {
  std::size_t total = 0;
  for (const auto& trace : traces) total += trace.size();
  dl::Matrix features(total, encoder.dim());
  std::vector<bool> labels;
  labels.reserve(total);
  std::vector<std::pair<std::size_t, std::size_t>> segments;
  std::size_t row = 0;
  for (const auto& trace : traces) {
    std::size_t begin = row;
    EncodeContext ctx;  // each capture gets a fresh streaming context
    for (const auto& entry : trace.entries()) {
      encoder.encode_into(entry.record, ctx, features.row(row++));
      labels.push_back(entry.malicious);
    }
    segments.emplace_back(begin, row);
  }
  WindowDataset dataset(std::move(features), std::move(labels), window_size);
  // Re-index: windows must not straddle capture boundaries.
  dataset.ae_starts_.clear();
  dataset.lstm_starts_.clear();
  for (const auto& [begin, end] : segments)
    dataset.index_segment(begin, end);
  return dataset;
}

std::size_t WindowDataset::ae_sample_count() const {
  return ae_starts_.size();
}

dl::Matrix WindowDataset::ae_matrix() const {
  dl::Matrix out(ae_starts_.size(), window_ * dim_);
  // A window of consecutive rows is contiguous in the feature matrix, so
  // each AE sample is a single block copy.
  for (std::size_t i = 0; i < ae_starts_.size(); ++i)
    std::memcpy(out.row(i), features_.row(ae_starts_[i]),
                window_ * dim_ * sizeof(float));
  return out;
}

std::vector<bool> WindowDataset::ae_labels() const {
  std::vector<bool> out(ae_starts_.size(), false);
  for (std::size_t i = 0; i < ae_starts_.size(); ++i) {
    std::size_t s = ae_starts_[i];
    for (std::size_t t = 0; t < window_; ++t)
      if (labels_[s + t]) {
        out[i] = true;
        break;
      }
  }
  return out;
}

std::size_t WindowDataset::lstm_sample_count() const {
  return lstm_starts_.size();
}

std::vector<dl::SequenceSample> WindowDataset::lstm_samples() const {
  std::vector<dl::SequenceSample> out;
  out.reserve(lstm_starts_.size());
  for (std::size_t s : lstm_starts_) {
    dl::SequenceSample sample;
    sample.window.reserve(window_);
    for (std::size_t t = 0; t < window_; ++t)
      sample.window.emplace_back(features_.row(s + t),
                                 features_.row(s + t) + dim_);
    sample.target.assign(features_.row(s + window_),
                         features_.row(s + window_) + dim_);
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<bool> WindowDataset::lstm_labels() const {
  std::vector<bool> out(lstm_starts_.size(), false);
  for (std::size_t i = 0; i < lstm_starts_.size(); ++i) {
    std::size_t s = lstm_starts_[i];
    for (std::size_t t = 0; t <= window_; ++t)
      if (labels_[s + t]) {
        out[i] = true;
        break;
      }
  }
  return out;
}

}  // namespace xsec::detect
