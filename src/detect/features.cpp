#include "detect/features.hpp"

#include <cassert>
#include <cmath>

#include "ran/nas.hpp"
#include "ran/rrc.hpp"

namespace xsec::detect {

void EncodeContext::reset() {
  seen_rntis.clear();
  tmsi_owners.clear();
  ue_tmsi.clear();
  last_timestamp_us = -1;
  pending_auth.clear();
  recent_setups.clear();
}

namespace {
const std::vector<std::string>& cause_vocab() {
  static const std::vector<std::string> causes = {
      "emergency",       "highPriorityAccess", "mt-Access",
      "mo-Signalling",   "mo-Data",            "mo-VoiceCall",
      "mo-VideoCall",    "mo-SMS",             "mps-PriorityAccess",
      "mcs-PriorityAccess"};
  return causes;
}

const std::vector<std::string>& alg_suffixes() {
  static const std::vector<std::string> suffixes = {"0", "1", "2", "3"};
  return suffixes;
}

constexpr std::size_t kTimingBuckets = 6;
constexpr std::size_t kLoadBuckets = 6;
constexpr std::int64_t kSetupRateWindowUs = 100'000;  // 100ms

std::size_t load_bucket(std::size_t count) {
  // 0, 1, 2, 3-4, 5-8, 9+
  if (count == 0) return 0;
  if (count == 1) return 1;
  if (count == 2) return 2;
  if (count <= 4) return 3;
  if (count <= 8) return 4;
  return 5;
}

std::size_t timing_bucket(std::int64_t delta_us) {
  // log10 buckets: <100us, <1ms, <10ms, <100ms, <1s, >=1s
  if (delta_us < 100) return 0;
  if (delta_us < 1'000) return 1;
  if (delta_us < 10'000) return 2;
  if (delta_us < 100'000) return 3;
  if (delta_us < 1'000'000) return 4;
  return 5;
}
}  // namespace

FeatureEncoder::FeatureEncoder(FeatureConfig config) : config_(config) {
  if (config_.messages) {
    for (const auto& name : ran::rrc_all_names()) {
      msg_index_["RRC:" + name] = names_.size();
      names_.push_back("msg=RRC:" + name);
    }
    for (const auto& name : ran::nas_all_names()) {
      msg_index_["NAS:" + name] = names_.size();
      names_.push_back("msg=NAS:" + name);
    }
    names_.push_back("msg=unknown");
    names_.push_back("dir=UL");
  }
  if (config_.identifiers) {
    names_.push_back("id.rnti_new");
    names_.push_back("id.tmsi_present");
    names_.push_back("id.tmsi_replayed_other_ue");
    names_.push_back("id.supi_plaintext");
    names_.push_back("id.suci_null_scheme");
    names_.push_back("id.release_incomplete");
  }
  if (config_.state) {
    names_.push_back("state.cipher_unknown");
    for (const auto& s : alg_suffixes()) names_.push_back("state.cipher=NEA" + s);
    names_.push_back("state.integrity_unknown");
    for (const auto& s : alg_suffixes())
      names_.push_back("state.integrity=NIA" + s);
    names_.push_back("state.cause_unknown");
    for (const auto& c : cause_vocab()) names_.push_back("state.cause=" + c);
  }
  if (config_.timing) {
    for (std::size_t b = 0; b < kTimingBuckets; ++b)
      names_.push_back("dt.bucket" + std::to_string(b));
  }
  if (config_.load) {
    for (std::size_t b = 0; b < kLoadBuckets; ++b)
      names_.push_back("load.pending_auth" + std::to_string(b));
    for (std::size_t b = 0; b < kLoadBuckets; ++b)
      names_.push_back("load.setup_rate" + std::to_string(b));
  }
  dim_ = names_.size();
}

std::vector<float> FeatureEncoder::encode(const mobiflow::Record& record,
                                          EncodeContext& ctx) const {
  std::vector<float> out(dim_, 0.0f);
  std::size_t base = 0;

  if (config_.messages) {
    auto it = msg_index_.find(record.protocol + ":" + record.msg);
    std::size_t unknown_slot = msg_index_.size();
    if (it != msg_index_.end())
      out[it->second] = 1.0f;
    else
      out[unknown_slot] = 1.0f;
    base = msg_index_.size() + 1;
    if (record.direction == "UL") out[base] = 1.0f;
    base += 1;
  }

  if (config_.identifiers) {
    bool rnti_new =
        record.rnti != 0 && !ctx.seen_rntis.count(record.rnti);
    if (record.rnti != 0) ctx.seen_rntis.insert(record.rnti);
    out[base + 0] = rnti_new ? 1.0f : 0.0f;

    if (record.s_tmsi != 0) {
      out[base + 1] = 1.0f;
      // Ownership is established by UPLINK presentations only; broadcast
      // paging and downlink allocations must not create owners.
      if (record.direction == "UL") {
        auto& owners = ctx.tmsi_owners[record.s_tmsi];
        owners.insert(record.ue_id);
        ctx.ue_tmsi[record.ue_id] = record.s_tmsi;
        // Replay = the identifier is simultaneously live in more than one
        // context (fires on every record of every involved context while
        // the conflict persists).
        out[base + 2] = owners.size() >= 2 ? 1.0f : 0.0f;
      }
    }
    if (record.msg == "RRCRelease") {
      auto held = ctx.ue_tmsi.find(record.ue_id);
      if (held != ctx.ue_tmsi.end()) {
        auto owners_it = ctx.tmsi_owners.find(held->second);
        if (owners_it != ctx.tmsi_owners.end())
          owners_it->second.erase(record.ue_id);
        ctx.ue_tmsi.erase(held);
      }
    }
    if (!record.supi_plain.empty()) out[base + 3] = 1.0f;
    // A null-scheme SUCI is detectable from the identity string itself.
    if (!record.suci.empty() && record.suci.find("-0-") != std::string::npos)
      out[base + 4] = 1.0f;
    // A context torn down before it ever reached a security context: the
    // footprint of garbage-collected half-open (DoS) connections.
    if (record.msg == "RRCRelease" && record.cipher_alg.empty() &&
        record.s_tmsi == 0)
      out[base + 5] = 1.0f;
    base += 6;
  }

  if (config_.state) {
    // cipher: [unknown, NEA0..NEA3]
    if (record.cipher_alg.empty())
      out[base + 0] = 1.0f;
    else if (record.cipher_alg.size() == 4 && record.cipher_alg[3] >= '0' &&
             record.cipher_alg[3] <= '3')
      out[base + 1 + (record.cipher_alg[3] - '0')] = 1.0f;
    base += 5;
    if (record.integrity_alg.empty())
      out[base + 0] = 1.0f;
    else if (record.integrity_alg.size() == 4 &&
             record.integrity_alg[3] >= '0' && record.integrity_alg[3] <= '3')
      out[base + 1 + (record.integrity_alg[3] - '0')] = 1.0f;
    base += 5;

    bool cause_found = false;
    const auto& causes = cause_vocab();
    for (std::size_t i = 0; i < causes.size(); ++i) {
      if (record.establishment_cause == causes[i]) {
        out[base + 1 + i] = 1.0f;
        cause_found = true;
        break;
      }
    }
    if (!cause_found) out[base + 0] = 1.0f;
    base += 1 + causes.size();
  }

  if (config_.timing) {
    // The first record of a stream has no predecessor; use a typical
    // inter-session gap so stream starts don't land in the rarest bucket
    // (which would make the first window of every capture an outlier).
    std::int64_t delta =
        ctx.last_timestamp_us < 0 ? 20'000
                                  : record.timestamp_us - ctx.last_timestamp_us;
    ctx.last_timestamp_us = record.timestamp_us;
    out[base + timing_bucket(delta)] = 1.0f;
    base += kTimingBuckets;
  }

  if (config_.load) {
    // Update the load trackers from this record.
    if (record.msg == "AuthenticationRequest") {
      ctx.pending_auth.insert(record.ue_id);
    } else if (record.msg == "AuthenticationResponse" ||
               record.msg == "AuthenticationFailure" ||
               record.msg == "AuthenticationReject" ||
               record.msg == "RRCRelease") {
      ctx.pending_auth.erase(record.ue_id);
    }
    if (record.msg == "RRCSetupRequest")
      ctx.recent_setups.push_back(record.timestamp_us);
    while (!ctx.recent_setups.empty() &&
           ctx.recent_setups.front() <
               record.timestamp_us - kSetupRateWindowUs)
      ctx.recent_setups.pop_front();

    // Emit the buckets only on connection-establishment messages: those
    // are the records a storm consists of, so the anomaly stays attached
    // to the attack records instead of every bystander during the storm.
    bool establishment = record.msg == "RRCSetupRequest" ||
                         record.msg == "RRCSetup" ||
                         record.msg == "RRCSetupComplete" ||
                         record.msg == "RegistrationRequest" ||
                         record.msg == "AuthenticationRequest";
    if (establishment) {
      out[base + load_bucket(ctx.pending_auth.size())] = 1.0f;
      out[base + kLoadBuckets + load_bucket(ctx.recent_setups.size())] = 1.0f;
    }
    base += 2 * kLoadBuckets;
  }

  assert(base == dim_);
  return out;
}

std::vector<std::vector<float>> FeatureEncoder::encode_trace(
    const mobiflow::Trace& trace) const {
  EncodeContext ctx;
  std::vector<std::vector<float>> out;
  out.reserve(trace.size());
  for (const auto& entry : trace.entries())
    out.push_back(encode(entry.record, ctx));
  return out;
}

std::string FeatureEncoder::feature_name(std::size_t i) const {
  assert(i < names_.size());
  return names_[i];
}

WindowDataset::WindowDataset(std::vector<std::vector<float>> features,
                             std::vector<bool> record_labels,
                             std::size_t window_size)
    : features_(std::move(features)),
      labels_(std::move(record_labels)),
      window_(window_size),
      dim_(features_.empty() ? 0 : features_[0].size()) {
  assert(features_.size() == labels_.size());
  assert(window_ > 0);
  index_segment(0, features_.size());
}

void WindowDataset::index_segment(std::size_t begin, std::size_t end) {
  if (end - begin >= window_)
    for (std::size_t s = begin; s + window_ <= end; ++s)
      ae_starts_.push_back(s);
  if (end - begin > window_)
    for (std::size_t s = begin; s + window_ < end; ++s)
      lstm_starts_.push_back(s);
}

WindowDataset WindowDataset::from_trace(const mobiflow::Trace& trace,
                                        const FeatureEncoder& encoder,
                                        std::size_t window_size) {
  std::vector<bool> labels;
  labels.reserve(trace.size());
  for (const auto& entry : trace.entries()) labels.push_back(entry.malicious);
  return WindowDataset(encoder.encode_trace(trace), std::move(labels),
                       window_size);
}

WindowDataset WindowDataset::from_traces(
    const std::vector<mobiflow::Trace>& traces, const FeatureEncoder& encoder,
    std::size_t window_size) {
  std::vector<std::vector<float>> features;
  std::vector<bool> labels;
  std::vector<std::pair<std::size_t, std::size_t>> segments;
  for (const auto& trace : traces) {
    std::size_t begin = features.size();
    auto encoded = encoder.encode_trace(trace);
    features.insert(features.end(), encoded.begin(), encoded.end());
    for (const auto& entry : trace.entries())
      labels.push_back(entry.malicious);
    segments.emplace_back(begin, features.size());
  }
  WindowDataset dataset(std::move(features), std::move(labels), window_size);
  // Re-index: windows must not straddle capture boundaries.
  dataset.ae_starts_.clear();
  dataset.lstm_starts_.clear();
  for (const auto& [begin, end] : segments)
    dataset.index_segment(begin, end);
  return dataset;
}

std::size_t WindowDataset::ae_sample_count() const {
  return ae_starts_.size();
}

dl::Matrix WindowDataset::ae_matrix() const {
  dl::Matrix out(ae_starts_.size(), window_ * dim_);
  for (std::size_t i = 0; i < ae_starts_.size(); ++i) {
    std::size_t s = ae_starts_[i];
    for (std::size_t t = 0; t < window_; ++t)
      for (std::size_t c = 0; c < dim_; ++c)
        out.at(i, t * dim_ + c) = features_[s + t][c];
  }
  return out;
}

std::vector<bool> WindowDataset::ae_labels() const {
  std::vector<bool> out(ae_starts_.size(), false);
  for (std::size_t i = 0; i < ae_starts_.size(); ++i) {
    std::size_t s = ae_starts_[i];
    for (std::size_t t = 0; t < window_; ++t)
      if (labels_[s + t]) {
        out[i] = true;
        break;
      }
  }
  return out;
}

std::size_t WindowDataset::lstm_sample_count() const {
  return lstm_starts_.size();
}

std::vector<dl::SequenceSample> WindowDataset::lstm_samples() const {
  std::vector<dl::SequenceSample> out;
  out.reserve(lstm_starts_.size());
  for (std::size_t s : lstm_starts_) {
    dl::SequenceSample sample;
    sample.window.assign(features_.begin() + static_cast<std::ptrdiff_t>(s),
                         features_.begin() + static_cast<std::ptrdiff_t>(
                                                 s + window_));
    sample.target = features_[s + window_];
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<bool> WindowDataset::lstm_labels() const {
  std::vector<bool> out(lstm_starts_.size(), false);
  for (std::size_t i = 0; i < lstm_starts_.size(); ++i) {
    std::size_t s = lstm_starts_[i];
    for (std::size_t t = 0; t <= window_; ++t)
      if (labels_[s + t]) {
        out[i] = true;
        break;
      }
  }
  return out;
}

}  // namespace xsec::detect
