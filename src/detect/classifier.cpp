#include "detect/classifier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace xsec::detect {

std::vector<AnomalyEvent> extract_events(const std::vector<double>& scores,
                                         double threshold,
                                         std::size_t merge_gap) {
  std::vector<AnomalyEvent> events;
  std::size_t gap = merge_gap + 1;  // windows since last flagged one
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > threshold) {
      if (gap > merge_gap || events.empty()) {
        events.push_back({i, i, {scores[i]}});
      } else {
        AnomalyEvent& event = events.back();
        // Include the bridged sub-threshold windows in the curve.
        for (std::size_t j = event.last_window + 1; j <= i; ++j)
          event.errors.push_back(scores[j]);
        event.last_window = i;
      }
      gap = 0;
    } else {
      ++gap;
    }
  }
  return events;
}

std::size_t event_pattern_dim(std::size_t curve_points) {
  return curve_points + 4;
}

std::vector<float> event_pattern(const AnomalyEvent& event, double threshold,
                                 std::size_t curve_points) {
  assert(!event.errors.empty());
  assert(threshold > 0.0);
  std::vector<float> out;
  out.reserve(event_pattern_dim(curve_points));

  // Shape: the error curve resampled to a fixed length, in units of the
  // threshold, log-compressed so magnitude differences don't swamp shape.
  const std::size_t n = event.errors.size();
  for (std::size_t p = 0; p < curve_points; ++p) {
    double position = curve_points == 1
                          ? 0.0
                          : static_cast<double>(p) *
                                static_cast<double>(n - 1) /
                                static_cast<double>(curve_points - 1);
    auto lo = static_cast<std::size_t>(std::floor(position));
    auto hi = std::min(n - 1, lo + 1);
    double frac = position - static_cast<double>(lo);
    double value =
        event.errors[lo] + frac * (event.errors[hi] - event.errors[lo]);
    out.push_back(static_cast<float>(
        std::log1p(std::max(0.0, value / threshold))));
  }

  double max_error = *std::max_element(event.errors.begin(),
                                       event.errors.end());
  double mean = 0.0;
  for (double e : event.errors) mean += e;
  mean /= static_cast<double>(n);
  std::vector<double> sorted = event.errors;
  std::sort(sorted.begin(), sorted.end());
  double median = sorted[n / 2];

  out.push_back(static_cast<float>(std::log1p(max_error / threshold)));
  out.push_back(static_cast<float>(std::log1p(mean / threshold)));
  out.push_back(static_cast<float>(std::log1p(median / threshold)));
  out.push_back(static_cast<float>(std::log1p(static_cast<double>(n))));
  return out;
}

AttackClassifier::AttackClassifier(std::vector<std::string> class_names,
                                   std::size_t input_dim,
                                   ClassifierConfig config)
    : class_names_(std::move(class_names)),
      input_dim_(input_dim),
      config_(config),
      rng_(config.seed) {
  assert(!class_names_.empty());
  network_.add(std::make_unique<dl::Linear>(input_dim_, config_.hidden, rng_));
  network_.add(std::make_unique<dl::Relu>());
  network_.add(
      std::make_unique<dl::Linear>(config_.hidden, class_names_.size(), rng_));
}

namespace {
/// Row-wise softmax in place; returns per-row max logit removed first for
/// numerical stability.
void softmax_rows(dl::Matrix& logits) {
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    float* row = logits.row(r);
    float max_logit = row[0];
    for (std::size_t c = 1; c < logits.cols(); ++c)
      max_logit = std::max(max_logit, row[c]);
    float total = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      row[c] = std::exp(row[c] - max_logit);
      total += row[c];
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) row[c] /= total;
  }
}
}  // namespace

double AttackClassifier::fit(const std::vector<std::vector<float>>& patterns,
                             const std::vector<std::size_t>& labels) {
  assert(patterns.size() == labels.size());
  assert(!patterns.empty());
  dl::Matrix x(patterns.size(), input_dim_);
  for (std::size_t r = 0; r < patterns.size(); ++r) {
    assert(patterns[r].size() == input_dim_);
    for (std::size_t c = 0; c < input_dim_; ++c) x.at(r, c) = patterns[r][c];
  }

  dl::Adam optimizer(network_.params(), config_.learning_rate);
  double loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    optimizer.zero_grad();
    dl::Matrix probs = network_.forward(x);
    softmax_rows(probs);
    loss = 0.0;
    dl::Matrix grad = probs;  // dCE/dlogits = p - y (per sample, / N)
    for (std::size_t r = 0; r < x.rows(); ++r) {
      double p = std::max(1e-12, static_cast<double>(probs.at(r, labels[r])));
      loss -= std::log(p);
      grad.at(r, labels[r]) -= 1.0f;
    }
    loss /= static_cast<double>(x.rows());
    dl::scale_inplace(grad, 1.0f / static_cast<float>(x.rows()));
    network_.backward(grad);
    optimizer.step();
  }
  return loss;
}

std::vector<double> AttackClassifier::probabilities(
    const std::vector<float>& pattern) {
  assert(pattern.size() == input_dim_);
  dl::Matrix x(1, input_dim_);
  for (std::size_t c = 0; c < input_dim_; ++c) x.at(0, c) = pattern[c];
  dl::Matrix logits = network_.forward(x);
  softmax_rows(logits);
  std::vector<double> out(class_names_.size());
  for (std::size_t c = 0; c < out.size(); ++c) out[c] = logits.at(0, c);
  return out;
}

std::size_t AttackClassifier::predict(const std::vector<float>& pattern) {
  auto probs = probabilities(pattern);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace xsec::detect
