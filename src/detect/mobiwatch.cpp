#include "detect/mobiwatch.hpp"

#include <chrono>
#include <cstring>

#include "common/log.hpp"
#include "oran/e2sm.hpp"

namespace xsec::detect {

Bytes AnomalyReport::serialize() const {
  ByteWriter w;
  w.str(detector);
  w.u64(node_id);
  w.f64(score);
  w.f64(threshold);
  Bytes window_bytes = window.serialize();
  w.u32(static_cast<std::uint32_t>(window_bytes.size()));
  w.raw(window_bytes);
  Bytes context_bytes = context.serialize();
  w.u32(static_cast<std::uint32_t>(context_bytes.size()));
  w.raw(context_bytes);
  return w.take();
}

Result<AnomalyReport> AnomalyReport::deserialize(const Bytes& wire) {
  ByteReader r(wire);
  AnomalyReport report;
  auto detector = r.str();
  if (!detector) return detector.error();
  report.detector = detector.value();
  auto node_id = r.u64();
  if (!node_id) return node_id.error();
  report.node_id = node_id.value();
  auto score = r.f64();
  if (!score) return score.error();
  report.score = score.value();
  auto threshold = r.f64();
  if (!threshold) return threshold.error();
  report.threshold = threshold.value();
  auto window_len = r.u32();
  if (!window_len) return window_len.error();
  auto window_bytes = r.raw(window_len.value());
  if (!window_bytes) return window_bytes.error();
  auto window = mobiflow::Trace::deserialize(window_bytes.value());
  if (!window) return window.error();
  report.window = window.value();
  auto context_len = r.u32();
  if (!context_len) return context_len.error();
  auto context_bytes = r.raw(context_len.value());
  if (!context_bytes) return context_bytes.error();
  auto context = mobiflow::Trace::deserialize(context_bytes.value());
  if (!context) return context.error();
  report.context = context.value();
  return report;
}

MobiWatchXapp::MobiWatchXapp(MobiWatchConfig config)
    : oran::XApp("mobiwatch"), config_(config) {}

MobiWatchXapp::Metrics& MobiWatchXapp::m() const {
  if (!metrics_.bound) {
    obs::MetricsRegistry& r = obs().metrics;
    metrics_.records_seen = &r.counter("mobiwatch.records_seen");
    metrics_.windows_scored = &r.counter("mobiwatch.windows_scored");
    metrics_.anomalies_flagged = &r.counter("mobiwatch.incidents_flagged");
    metrics_.anomalous_windows = &r.counter("mobiwatch.anomalous_windows");
    metrics_.gaps_observed = &r.counter("mobiwatch.gaps_observed");
    metrics_.batch_rows = &r.histogram("dl.batch_rows");
    metrics_.score_ns = &r.histogram("dl.score_ns");
    metrics_.bound = true;
  }
  return metrics_;
}

void MobiWatchXapp::install_detector(
    std::shared_ptr<AnomalyDetector> detector, FeatureEncoder encoder) {
  detector_ = std::move(detector);
  encoder_ = std::make_unique<FeatureEncoder>(std::move(encoder));
  encode_ctx_.reset();
  const std::size_t needed = detector_->rows_needed(config_.window_size);
  keep_ = config_.context_records + needed;
  capacity_ = keep_ + kBatchSlack;
  recent_feats_ = dl::Matrix(capacity_, encoder_->dim());
  filled_ = 0;
  pending_ = 0;
  recent_.clear();
  base_threshold_ = detector_->threshold();
  detector_->set_threshold(base_threshold_ * threshold_scale_);
  // Largest batch a flush can ever hand the detector; sized up front so
  // the scoring path never grows this buffer later.
  scores_.resize(capacity_ - needed + 1);
}

oran::PolicyStatus MobiWatchXapp::on_policy(const oran::A1Policy& policy) {
  if (policy.policy_type != oran::kPolicyDetectionTuning)
    return oran::PolicyStatus::kUnsupported;
  double scale = policy.get_double("threshold_scale", threshold_scale_);
  if (scale <= 0.0) return oran::PolicyStatus::kNotEnforced;
  threshold_scale_ = scale;
  if (detector_) detector_->set_threshold(base_threshold_ * threshold_scale_);
  config_.incident_close_gap = static_cast<std::size_t>(policy.get_double(
      "incident_close_gap",
      static_cast<double>(config_.incident_close_gap)));
  return oran::PolicyStatus::kEnforced;
}

void MobiWatchXapp::subscribe_to_node(std::uint64_t node_id) {
  const auto* functions = ric().node_functions(node_id);
  if (!functions) return;
  for (const auto& f : *functions) {
    if (f.function_id != oran::e2sm::kMobiFlowFunctionId) continue;
    oran::e2sm::EventTriggerDefinition trigger;
    trigger.report_period_ms = config_.report_period_ms;
    oran::RicAction action;
    action.action_id = 1;
    action.type = oran::RicActionType::kReport;
    action.definition = oran::e2sm::encode_action_definition(
        oran::e2sm::ActionDefinition{});
    ric().subscribe(this, node_id, f.function_id,
                    oran::e2sm::encode_event_trigger(trigger), {action});
  }
}

void MobiWatchXapp::on_start() {
  // Subscribe to the MobiFlow function on every connected node.
  for (std::uint64_t node_id : ric().connected_nodes())
    subscribe_to_node(node_id);
}

void MobiWatchXapp::on_node_connected(std::uint64_t node_id) {
  subscribe_to_node(node_id);
  // A re-setup after we had telemetry means the link was down for a while:
  // the stream is discontinuous even though no sequence gap is visible
  // (the agent was not flushing during the outage).
  if (records_seen() > 0) note_gap(node_id, "link recovery");
}

void MobiWatchXapp::on_telemetry_gap(std::uint64_t node_id,
                                     const oran::RicRequestId& request_id,
                                     std::uint32_t first_sequence,
                                     std::uint32_t last_sequence) {
  (void)request_id;
  note_gap(node_id, "indications " + std::to_string(first_sequence) + "-" +
                        std::to_string(last_sequence) + " lost");
}

void MobiWatchXapp::note_gap(std::uint64_t node_id, const std::string& why) {
  m().gaps_observed->inc();
  obs().metrics.counter("mobiwatch.node" + std::to_string(node_id) + ".gaps")
      .inc();
  XSEC_LOG_WARN("mobiwatch", "telemetry gap on node ", node_id, " (", why,
                "): quarantining windows that span it");
  // Persist a gap marker next to the telemetry so downstream consumers
  // (rApps, audits) know the stored stream is discontinuous here.
  sdl().set_str(config_.sdl_namespace + ".gaps",
                oran::Sdl::seq_key(next_seq_++),
                "node=" + std::to_string(node_id) + " " + why);
  // Pre-gap records already formed complete windows — score them before
  // the quarantine discards their rows.
  flush_pending();
  // An open incident's evidence (pre-gap records) is intact — report it
  // rather than tainting it with post-gap telemetry.
  if (burst_active_) publish_incident();
  // Quarantine: drop the sliding window so no scored window mixes records
  // from both sides of the discontinuity. Scoring resumes once a full
  // window of contiguous post-gap records has accumulated.
  recent_.clear();
  filled_ = 0;
  pending_ = 0;
  encode_ctx_.reset();
}

void MobiWatchXapp::on_indication(std::uint64_t node_id,
                                  const oran::RicIndication& indication) {
  current_node_id_ = node_id;
  auto message =
      oran::e2sm::decode_indication_message(indication.message);
  if (!message) {
    XSEC_LOG_WARN("mobiwatch", "undecodable indication message");
    return;
  }
  // Nests under the RIC's open ric.deliver span for this indication.
  obs::Span ingest = obs().tracer.begin(
      "mobiwatch.ingest", (node_id << 32) | indication.sequence_number);
  for (const auto& row : message.value().rows) {
    auto record = mobiflow::Record::from_kv_bytes(row);
    if (!record) {
      XSEC_LOG_WARN("mobiwatch", "undecodable telemetry row: ",
                    record.error().message);
      continue;
    }
    handle_record(record.value());
  }
  // Score everything this indication completed in one batched pass, so
  // counters and incident state are up to date when the call returns.
  flush_pending();
}

void MobiWatchXapp::handle_record(const mobiflow::Record& record) {
  m().records_seen->inc();
  // Persist to the SDL so other xApps (and the SMO's rApps) see history.
  sdl().set(config_.sdl_namespace, oran::Sdl::seq_key(next_seq_++),
            record.to_kv_bytes());

  if (!detector_ || !encoder_) return;  // collection mode

  if (filled_ == capacity_) {
    // Out of slack: batch-score the accumulated windows while their rows
    // are still resident, then compact in one memmove down to the history
    // the NEXT window needs (its context plus its first needed-1 rows).
    flush_pending();
    const std::size_t retain = keep_ - 1;
    const std::size_t drop = filled_ - retain;
    std::memmove(recent_feats_.row(0), recent_feats_.row(drop),
                 retain * recent_feats_.cols() * sizeof(float));
    recent_.erase(recent_.begin(),
                  recent_.begin() + static_cast<std::ptrdiff_t>(drop));
    filled_ = retain;
  }
  encoder_->encode_into(record, encode_ctx_, recent_feats_.row(filled_));
  ++filled_;
  recent_.push_back(record);

  // This record completed a window; it is scored at the next flush.
  if (filled_ >= detector_->rows_needed(config_.window_size)) ++pending_;
}

void MobiWatchXapp::flush_pending() {
  if (pending_ == 0) return;
  const std::size_t needed = detector_->rows_needed(config_.window_size);
  // Pending window j (oldest first) ends at recent_[first_end + j].
  const std::size_t first_end = filled_ - pending_;
  const std::size_t n = pending_;
  pending_ = 0;
  {
    // Auto-nests under the enclosing mobiwatch.ingest span (when called
    // from on_indication).
    obs::Span scoring = obs().tracer.begin("mobiwatch.score");
    m().batch_rows->observe(n);
    if (config_.time_scoring) {
      auto t0 = std::chrono::steady_clock::now();
      detector_->score_windows(recent_feats_.row(first_end - needed + 1),
                               recent_feats_.cols(), needed, n,
                               scores_.data());
      auto t1 = std::chrono::steady_clock::now();
      m().score_ns->observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    } else {
      detector_->score_windows(recent_feats_.row(first_end - needed + 1),
                               recent_feats_.cols(), needed, n,
                               scores_.data());
    }
  }
  for (std::size_t j = 0; j < n; ++j)
    apply_score(scores_[j], first_end + j, needed);
}

void MobiWatchXapp::apply_score(double score, std::size_t end,
                                std::size_t needed) {
  const mobiflow::Record& record = recent_[end];
  m().windows_scored->inc();
  bool anomalous = detector_->is_anomalous(score);
  if (anomalous) m().anomalous_windows->inc();

  if (burst_active_) {
    // The incident stays open while anomalous windows keep arriving (and
    // across short quiet gaps); every record in that span belongs to it.
    burst_window_.add(record);
    if (anomalous) {
      burst_gap_ = 0;
      burst_peak_ = std::max(burst_peak_, score);
    } else if (++burst_gap_ > config_.incident_close_gap) {
      publish_incident();
    }
    return;
  }

  if (!anomalous) return;

  // Open a new incident: the window that tripped the detector starts it,
  // the up-to-context_records preceding records are its context.
  burst_active_ = true;
  burst_gap_ = 0;
  burst_peak_ = score;
  burst_window_ = mobiflow::Trace();
  burst_context_ = mobiflow::Trace();
  const std::size_t window_start = end - needed + 1;
  const std::size_t context_start =
      window_start > config_.context_records
          ? window_start - config_.context_records
          : 0;
  for (std::size_t i = context_start; i < window_start; ++i)
    burst_context_.add(recent_[i]);
  for (std::size_t i = window_start; i <= end; ++i)
    burst_window_.add(recent_[i]);
}

void MobiWatchXapp::publish_incident() {
  if (!burst_active_) return;
  burst_active_ = false;
  m().anomalies_flagged->inc();

  AnomalyReport report;
  report.detector = detector_ ? detector_->name() : "";
  report.node_id = current_node_id_;
  report.score = burst_peak_;
  report.threshold = detector_ ? detector_->threshold() : 0.0;
  report.window = std::move(burst_window_);
  report.context = std::move(burst_context_);
  burst_window_ = mobiflow::Trace();
  burst_context_ = mobiflow::Trace();

  XSEC_LOG_INFO("mobiwatch", "incident reported: peak score=", report.score,
                " threshold=", report.threshold, " window=",
                report.window.size(), " records");
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.source = name();
  msg.payload = report.serialize();
  router().publish(msg);
}

void MobiWatchXapp::close_open_incident() {
  flush_pending();
  publish_incident();
}

}  // namespace xsec::detect
