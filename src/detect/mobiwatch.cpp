#include "detect/mobiwatch.hpp"

#include "common/log.hpp"
#include "oran/e2sm.hpp"

namespace xsec::detect {

Bytes AnomalyReport::serialize() const {
  ByteWriter w;
  w.str(detector);
  w.u64(node_id);
  w.u64(source_ue);
  w.f64(score);
  w.f64(threshold);
  Bytes window_bytes = window.serialize();
  w.u32(static_cast<std::uint32_t>(window_bytes.size()));
  w.raw(window_bytes);
  Bytes context_bytes = context.serialize();
  w.u32(static_cast<std::uint32_t>(context_bytes.size()));
  w.raw(context_bytes);
  return w.take();
}

Result<AnomalyReport> AnomalyReport::deserialize(const Bytes& wire) {
  ByteReader r(wire);
  AnomalyReport report;
  auto detector = r.str();
  if (!detector) return detector.error();
  report.detector = detector.value();
  auto node_id = r.u64();
  if (!node_id) return node_id.error();
  report.node_id = node_id.value();
  auto source_ue = r.u64();
  if (!source_ue) return source_ue.error();
  report.source_ue = source_ue.value();
  auto score = r.f64();
  if (!score) return score.error();
  report.score = score.value();
  auto threshold = r.f64();
  if (!threshold) return threshold.error();
  report.threshold = threshold.value();
  auto window_len = r.u32();
  if (!window_len) return window_len.error();
  auto window_bytes = r.raw(window_len.value());
  if (!window_bytes) return window_bytes.error();
  auto window = mobiflow::Trace::deserialize(window_bytes.value());
  if (!window) return window.error();
  report.window = window.value();
  auto context_len = r.u32();
  if (!context_len) return context_len.error();
  auto context_bytes = r.raw(context_len.value());
  if (!context_bytes) return context_bytes.error();
  auto context = mobiflow::Trace::deserialize(context_bytes.value());
  if (!context) return context.error();
  report.context = context.value();
  return report;
}

SourceWindowConfig MobiWatchXapp::engine_config(
    const MobiWatchConfig& config) {
  SourceWindowConfig engine;
  engine.window_size = config.window_size;
  engine.context_records = config.context_records;
  engine.incident_close_gap = config.incident_close_gap;
  engine.key_mode = config.key_mode;
  engine.shards = config.shards == 0 ? 1 : config.shards;
  engine.flush_records = config.flush_records;
  engine.time_scoring = config.time_scoring;
  engine.per_shard_metrics = config.per_shard_metrics;
  return engine;
}

MobiWatchXapp::MobiWatchXapp(MobiWatchConfig config)
    : oran::XApp("mobiwatch"),
      config_(config),
      engine_(engine_config(config)) {
  engine_.set_obs_provider([this]() { return &obs(); });
  engine_.set_incident_sink([this](SourceWindowEngine::Incident incident) {
    publish_incident(std::move(incident));
  });
}

MobiWatchXapp::Metrics& MobiWatchXapp::m() const {
  if (!metrics_.bound) {
    obs::MetricsRegistry& r = obs().metrics;
    metrics_.records_seen = &r.counter("mobiwatch.records_seen");
    metrics_.windows_scored = &r.counter("mobiwatch.windows_scored");
    metrics_.anomalies_flagged = &r.counter("mobiwatch.incidents_flagged");
    metrics_.anomalous_windows = &r.counter("mobiwatch.anomalous_windows");
    metrics_.gaps_observed = &r.counter("mobiwatch.gaps_observed");
    metrics_.batch_rows = &r.histogram("dl.batch_rows");
    metrics_.score_ns = &r.histogram("dl.score_ns");
    metrics_.bound = true;
  }
  return metrics_;
}

void MobiWatchXapp::install_detector(
    std::shared_ptr<AnomalyDetector> detector, FeatureEncoder encoder) {
  detector_ = std::move(detector);
  base_threshold_ = detector_->threshold();
  detector_->set_threshold(base_threshold_ * threshold_scale_);
  engine_.install(detector_, std::move(encoder));
  if (engine_.parallel())
    XSEC_LOG_INFO("mobiwatch", "scoring sharded across ",
                  engine_.shard_count(), " worker threads");
}

oran::PolicyStatus MobiWatchXapp::on_policy(const oran::A1Policy& policy) {
  if (policy.policy_type != oran::kPolicyDetectionTuning)
    return oran::PolicyStatus::kUnsupported;
  double scale = policy.get_double("threshold_scale", threshold_scale_);
  if (scale <= 0.0) return oran::PolicyStatus::kNotEnforced;
  threshold_scale_ = scale;
  if (detector_) detector_->set_threshold(base_threshold_ * threshold_scale_);
  config_.incident_close_gap = static_cast<std::size_t>(policy.get_double(
      "incident_close_gap",
      static_cast<double>(config_.incident_close_gap)));
  engine_.set_incident_close_gap(config_.incident_close_gap);
  return oran::PolicyStatus::kEnforced;
}

void MobiWatchXapp::subscribe_to_node(std::uint64_t node_id) {
  const auto* functions = ric().node_functions(node_id);
  if (!functions) return;
  for (const auto& f : *functions) {
    if (f.function_id != oran::e2sm::kMobiFlowFunctionId) continue;
    oran::e2sm::EventTriggerDefinition trigger;
    trigger.report_period_ms = config_.report_period_ms;
    oran::RicAction action;
    action.action_id = 1;
    action.type = oran::RicActionType::kReport;
    action.definition = oran::e2sm::encode_action_definition(
        oran::e2sm::ActionDefinition{});
    ric().subscribe(this, node_id, f.function_id,
                    oran::e2sm::encode_event_trigger(trigger), {action});
  }
}

void MobiWatchXapp::on_start() {
  // Subscribe to the MobiFlow function on every connected node.
  for (std::uint64_t node_id : ric().connected_nodes())
    subscribe_to_node(node_id);
}

void MobiWatchXapp::on_node_connected(std::uint64_t node_id) {
  subscribe_to_node(node_id);
  // A re-setup after we had telemetry means the link was down for a while:
  // the stream is discontinuous even though no sequence gap is visible
  // (the agent was not flushing during the outage).
  if (records_seen() > 0) note_gap(node_id, "link recovery");
}

void MobiWatchXapp::on_telemetry_gap(std::uint64_t node_id,
                                     const oran::RicRequestId& request_id,
                                     std::uint32_t first_sequence,
                                     std::uint32_t last_sequence) {
  (void)request_id;
  note_gap(node_id, "indications " + std::to_string(first_sequence) + "-" +
                        std::to_string(last_sequence) + " lost");
}

void MobiWatchXapp::note_gap(std::uint64_t node_id, const std::string& why) {
  m().gaps_observed->inc();
  obs().metrics.counter("mobiwatch.node" + std::to_string(node_id) + ".gaps")
      .inc();
  XSEC_LOG_WARN("mobiwatch", "telemetry gap on node ", node_id, " (", why,
                "): quarantining windows that span it");
  // Persist a gap marker next to the telemetry so downstream consumers
  // (rApps, audits) know the stored stream is discontinuous here.
  sdl().set_str(config_.sdl_namespace + ".gaps",
                oran::Sdl::seq_key(next_seq_++),
                "node=" + std::to_string(node_id) + " " + why);
  // Scores that node's complete pre-gap windows, reports its open
  // incidents, and drops its window assembly; other nodes' sources are
  // untouched (their streams are not discontinuous).
  engine_.quarantine_node(node_id);
}

void MobiWatchXapp::on_indication(std::uint64_t node_id,
                                  const oran::RicIndication& indication) {
  on_indication_view(node_id, oran::as_view(indication));
}

void MobiWatchXapp::on_indication_view(std::uint64_t node_id,
                                       const oran::RicIndicationView& view) {
  // Nests under the RIC's open ric.deliver span for this indication.
  obs::Span ingest = obs().tracer.begin(
      "mobiwatch.ingest", (node_id << 32) | view.sequence_number);
  // Walk the rows in place — no message materialization, no per-row
  // allocation before the SDL's own copy.
  oran::e2sm::RowCursor rows(view.message);
  while (auto row = rows.next()) {
    auto record = mobiflow::Record::from_kv_bytes(*row);
    if (!record) {
      XSEC_LOG_WARN("mobiwatch", "undecodable telemetry row: ",
                    record.error().message);
      continue;
    }
    handle_record_row(node_id, record.value(), *row);
  }
  if (!rows.ok()) {
    XSEC_LOG_WARN("mobiwatch", "undecodable indication message");
    return;
  }
  // Score everything this indication completed in one batched pass, so
  // counters and incident state are up to date when the call returns.
  engine_.flush();
}

void MobiWatchXapp::handle_record(std::uint64_t node_id,
                                  const mobiflow::Record& record) {
  Bytes row = record.to_kv_bytes();
  handle_record_row(node_id, record,
                    std::span<const std::uint8_t>(row.data(), row.size()));
}

void MobiWatchXapp::handle_record_row(std::uint64_t node_id,
                                      const mobiflow::Record& record,
                                      std::span<const std::uint8_t> row) {
  m().records_seen->inc();
  // Persist to the SDL so other xApps (and the SMO's rApps) see history.
  // One global arrival-ordered sequence across all nodes. The row bytes
  // were produced by Record::to_kv_bytes on the agent, so storing them
  // verbatim is byte-identical to re-encoding the decoded record.
  sdl().set(config_.sdl_namespace, oran::Sdl::seq_key(next_seq_++),
            Bytes(row.begin(), row.end()));
  engine_.ingest(node_id, record);
}

void MobiWatchXapp::publish_incident(SourceWindowEngine::Incident incident) {
  m().anomalies_flagged->inc();

  AnomalyReport report;
  report.detector = detector_ ? detector_->name() : "";
  report.node_id = incident.source.node_id;
  report.source_ue = incident.source.ue_id;
  report.score = incident.peak_score;
  report.threshold = detector_ ? detector_->threshold() : 0.0;
  report.window = std::move(incident.window);
  report.context = std::move(incident.context);

  XSEC_LOG_INFO("mobiwatch", "incident reported: peak score=", report.score,
                " threshold=", report.threshold, " window=",
                report.window.size(), " records");
  oran::RoutedMessage msg;
  msg.mtype = oran::kMtAnomalyWindow;
  msg.source = name();
  msg.payload = report.serialize();
  router().publish(msg);
}

void MobiWatchXapp::close_open_incident() {
  engine_.close_open_incidents();
}

}  // namespace xsec::detect
