// Ensemble-of-autoencoders detector (Kitsune-style, the paper's cited
// unsupervised lineage [Mirsky et al., NDSS'18]).
//
// The feature space is partitioned into subspaces; a small autoencoder per
// subspace learns its benign manifold, and a window's score is the worst
// member score normalized by that member's own benign calibration. Members
// localize which telemetry aspect deviated (the member name is exposed for
// explanations), and small members train faster than one monolithic AE —
// an extension beyond the paper's two baseline models, kept out of the
// Table 2 reproduction and reported separately.
#pragma once

#include <memory>

#include "detect/scorer.hpp"

namespace xsec::detect {

struct EnsembleConfig {
  DetectorConfig detector;
  /// Hidden widths of each member AE (mirrored decoder).
  std::vector<std::size_t> member_hidden = {32, 8};
  /// Per-member calibration percentile (members normalize their scores by
  /// this before the max-combination).
  double member_percentile = 99.0;
};

/// A named subset of feature columns handled by one ensemble member.
struct FeatureGroup {
  std::string name;
  std::vector<std::size_t> columns;
};

/// Partitions an encoder's feature space by its name prefixes ("msg"/"dir",
/// "id.", "state.", "dt.", "load.") — the natural Table 1 category split.
std::vector<FeatureGroup> groups_by_category(const FeatureEncoder& encoder);

class EnsembleDetector : public AnomalyDetector {
 public:
  EnsembleDetector(std::size_t window_size, std::size_t feature_dim,
                   std::vector<FeatureGroup> groups,
                   EnsembleConfig config = {});

  std::string name() const override { return "Ensemble-AE"; }
  void fit(const WindowDataset& benign) override;
  std::vector<double> score(const WindowDataset& data) override;
  std::vector<bool> labels(const WindowDataset& data) const override {
    return data.ae_labels();
  }
  using AnomalyDetector::score_window;
  double score_window(const float* rows, std::size_t n_rows) override;
  void score_windows(const float* rows, std::size_t row_dim,
                     std::size_t rows_per_window, std::size_t n_windows,
                     double* scores) override;
  std::size_t rows_needed(std::size_t window_size) const override {
    return window_size;
  }
  std::unique_ptr<AnomalyDetector> clone_for_inference() override;

  std::size_t member_count() const { return members_.size(); }
  const std::string& member_name(std::size_t i) const {
    return groups_[i].name;
  }
  /// Index of the member that dominated the last score_window call — the
  /// "which aspect deviated" attribution.
  std::size_t last_dominant_member() const { return last_dominant_; }

 private:
  struct Member {
    std::unique_ptr<dl::Autoencoder> model;
    double calibration = 1.0;  // member's own benign percentile score
  };

  /// Slices the standardized full-window matrix down to a member's columns
  /// (repeated per window position).
  dl::Matrix slice(const dl::Matrix& standardized, std::size_t member) const;
  void slice_into(const dl::Matrix& standardized, std::size_t member,
                  dl::Matrix& out) const;
  /// Per-row worst per-record reconstruction error for one member.
  std::vector<double> member_scores(std::size_t member,
                                    const dl::Matrix& standardized);
  std::vector<double> combined_scores(const dl::Matrix& raw_windows,
                                      std::vector<std::size_t>* dominant);

  std::size_t window_size_;
  std::size_t feature_dim_;
  std::vector<FeatureGroup> groups_;
  EnsembleConfig config_;
  Standardizer scaler_;
  std::vector<Member> members_;
  std::size_t last_dominant_ = 0;
  /// Inference workspace (warmed once, then allocation-free): the
  /// standardized full-window batch, the per-member slice, and the
  /// per-window dominant-member tracker.
  dl::Matrix infer_full_;
  dl::Matrix infer_slice_;
  std::vector<std::size_t> infer_dominant_;
};

}  // namespace xsec::detect
