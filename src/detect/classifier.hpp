// Supervised attack-type classifier over reconstruction-error patterns.
//
// Implements the extension the paper proposes from Figure 4: "attack
// instances of the same type exhibit highly similar group anomaly patterns
// with respect to the reconstruction errors ... this feature is potentially
// useful for training a supervised attack classifier to recognize and
// cluster events of different attack types".
//
// An *event* is a contiguous run of windows whose anomaly score exceeds the
// detector threshold. Its error pattern (shape-normalized error curve plus
// magnitude/duration statistics) feeds a small softmax MLP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dl/layers.hpp"
#include "dl/optim.hpp"

namespace xsec::detect {

/// A detected anomaly event: one burst of consecutive flagged windows.
struct AnomalyEvent {
  std::size_t first_window = 0;
  std::size_t last_window = 0;  // inclusive
  std::vector<double> errors;   // scores of the flagged windows

  std::size_t length() const { return errors.size(); }
};

/// Extracts events from a window score series: maximal runs of scores above
/// `threshold`, merging runs separated by at most `merge_gap` windows (one
/// attack can dip briefly below the threshold mid-event).
std::vector<AnomalyEvent> extract_events(const std::vector<double>& scores,
                                         double threshold,
                                         std::size_t merge_gap = 3);

/// Fixed-length feature vector for an event's error pattern:
///   - the error curve resampled to `curve_points` and scaled by the
///     threshold (shape),
///   - log-magnitude statistics (max/mean/median over threshold),
///   - log duration.
std::vector<float> event_pattern(const AnomalyEvent& event, double threshold,
                                 std::size_t curve_points = 16);
/// Dimension of event_pattern's output for a given curve resolution.
std::size_t event_pattern_dim(std::size_t curve_points = 16);

struct ClassifierConfig {
  std::size_t hidden = 32;
  int epochs = 200;
  float learning_rate = 5e-3f;
  std::uint64_t seed = 777;
};

/// Softmax MLP over event patterns.
class AttackClassifier {
 public:
  AttackClassifier(std::vector<std::string> class_names,
                   std::size_t input_dim, ClassifierConfig config = {});

  /// Trains on (pattern, class index) pairs; returns final mean CE loss.
  double fit(const std::vector<std::vector<float>>& patterns,
             const std::vector<std::size_t>& labels);

  /// Class probabilities for one pattern.
  std::vector<double> probabilities(const std::vector<float>& pattern);
  std::size_t predict(const std::vector<float>& pattern);
  const std::string& class_name(std::size_t index) const {
    return class_names_[index];
  }
  std::size_t num_classes() const { return class_names_.size(); }

 private:
  std::vector<std::string> class_names_;
  std::size_t input_dim_;
  ClassifierConfig config_;
  dl::Sequential network_;
  Rng rng_;
};

}  // namespace xsec::detect
