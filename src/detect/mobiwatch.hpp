// MOBIWATCH: the unsupervised anomaly-detection xApp (paper §3.2).
//
// Subscribes to the E2SM-MOBIFLOW RAN function, stores incoming telemetry
// in the SDL, featurizes the stream, scores each sliding window with the
// installed detector, and forwards flagged windows (with their surrounding
// context) over the message router to the LLM analyzer xApp. Without an
// installed detector it runs in collection mode, only persisting telemetry
// — the "train" phase of the paper's train/deploy split.
//
// Window assembly and scoring are delegated to the SourceWindowEngine:
// every E2 node (optionally every node+UE) gets its own sliding window and
// incident state machine, and scoring fans out across the RIC's shard
// workers. This xApp keeps the platform-facing duties: subscriptions, SDL
// persistence, A1 policy, gap quarantine, and incident publication.
#pragma once

#include <memory>

#include "detect/scorer.hpp"
#include "detect/source_windows.hpp"
#include "mobiflow/record.hpp"
#include "mobiflow/trace.hpp"
#include "oran/ric.hpp"
#include "oran/xapp.hpp"

namespace xsec::detect {

/// What MobiWatch hands to the LLM analyzer for a flagged window.
struct AnomalyReport {
  std::string detector;
  /// E2 node the telemetry came from (remediation target).
  std::uint64_t node_id = 0;
  /// UE the source window was keyed on (0 under per-node assembly).
  std::uint64_t source_ue = 0;
  double score = 0.0;
  double threshold = 0.0;
  /// The anomalous window itself.
  mobiflow::Trace window;
  /// Preceding records for context (the paper passes "the sequence plus
  /// its context window").
  mobiflow::Trace context;

  Bytes serialize() const;
  static Result<AnomalyReport> deserialize(const Bytes& wire);
};

struct MobiWatchConfig {
  std::size_t window_size = 5;
  /// Records of preceding context attached to each report.
  std::size_t context_records = 25;
  /// E2SM report period requested in the subscription.
  std::uint32_t report_period_ms = 10;
  /// SDL namespace telemetry rows are stored under.
  std::string sdl_namespace = "mobiflow";
  /// Incident aggregation: a run of anomalous windows forms ONE incident;
  /// the incident closes (and is reported) after this many consecutive
  /// quiet windows. Keeps one report per attack burst instead of one per
  /// overlapping window.
  std::size_t incident_close_gap = 6;
  /// Record wall-clock scoring latency in the "dl.score_ns" histogram.
  /// Off by default: wall-clock values differ run to run, and the
  /// deterministic observability exports must stay byte-stable across
  /// identical seeded runs. "dl.batch_rows" is always recorded.
  bool time_scoring = false;
  /// RIC shards scoring fans out over (1 = inline, no worker threads).
  std::size_t shards = 1;
  /// Window keying (per node by default; see SourceKeyMode).
  SourceKeyMode key_mode = SourceKeyMode::kNode;
  /// Records between automatic engine flushes; 0 = flush at indication
  /// boundaries only (the deterministic default cadence).
  std::size_t flush_records = 0;
  /// Mirror per-shard throughput under "mobiwatch.shard<k>.*" (bench-only;
  /// per-shard names differ across shard counts by construction).
  bool per_shard_metrics = false;
};

class MobiWatchXapp : public oran::XApp {
 public:
  explicit MobiWatchXapp(MobiWatchConfig config = {});

  /// Installs a pre-trained detector and the encoder it was trained with.
  /// (Training happens offline / in the SMO; see paper Figure 3.)
  void install_detector(std::shared_ptr<AnomalyDetector> detector,
                        FeatureEncoder encoder);

  void on_start() override;
  /// Owned-indication entry (unit tests, reorder-buffer replays): wraps
  /// the indication in a view and forwards to the zero-copy path so both
  /// entries share one implementation.
  void on_indication(std::uint64_t node_id,
                     const oran::RicIndication& indication) override;
  /// Zero-copy ingest: rows are read straight out of the transport's
  /// frame via e2sm::RowCursor and stored in the SDL from the row span —
  /// byte-identical to the re-encoded form, with no per-row allocation
  /// before the SDL copy.
  void on_indication_view(std::uint64_t node_id,
                          const oran::RicIndicationView& view) override;
  /// Link recovery: the old subscription died with the link — re-subscribe,
  /// and treat the outage as a telemetry gap (records collected while the
  /// link was down may be delayed or lost).
  void on_node_connected(std::uint64_t node_id) override;
  /// The RIC's sequence tracker abandoned a run of indications. Windows
  /// spanning the gap would mix pre- and post-gap telemetry that is not
  /// actually contiguous — quarantine them instead of scoring them.
  void on_telemetry_gap(std::uint64_t node_id,
                        const oran::RicRequestId& request_id,
                        std::uint32_t first_sequence,
                        std::uint32_t last_sequence) override;
  /// A1 detection-tuning policy: "threshold_scale" multiplies the trained
  /// detection threshold (operator sensitivity knob), "incident_close_gap"
  /// adjusts burst aggregation.
  oran::PolicyStatus on_policy(const oran::A1Policy& policy) override;

  std::size_t records_seen() const { return m().records_seen->value(); }
  std::size_t windows_scored() const { return m().windows_scored->value(); }
  /// Incidents reported (anomaly bursts, not individual windows).
  std::size_t anomalies_flagged() const {
    return m().anomalies_flagged->value();
  }
  /// Individual windows that exceeded the threshold.
  std::size_t anomalous_windows() const {
    return m().anomalous_windows->value();
  }
  bool incident_open() const { return engine_.any_incident_open(); }
  bool has_detector() const { return detector_ != nullptr; }
  /// The installed detector (shared with the engine's shard replicas'
  /// parent); the model-lifecycle subsystem clones and fine-tunes it.
  const std::shared_ptr<AnomalyDetector>& detector_handle() const {
    return detector_;
  }
  /// Per-window tap forwarded to the engine (invoked on the coordinator in
  /// arrival order; see SourceWindowEngine::ScoreObserver).
  void set_score_observer(SourceWindowEngine::ScoreObserver observer) {
    engine_.set_score_observer(std::move(observer));
  }
  const MobiWatchConfig& config() const { return config_; }
  /// The per-source window/scoring engine (sharding introspection).
  const SourceWindowEngine& engine() const { return engine_; }
  /// Telemetry discontinuities observed (sequence gaps + link outages).
  /// Each one reset the affected sliding windows so no scored window spans
  /// it.
  std::size_t gaps_observed() const { return m().gaps_observed->value(); }

  /// Closes and reports incidents still open when the stream ends.
  void close_open_incident();

 private:
  /// Registry handles, bound lazily on first use ("mobiwatch.*") so the
  /// xApp works both attached to a RIC (shared registry) and standalone.
  struct Metrics {
    obs::Counter* records_seen = nullptr;
    obs::Counter* windows_scored = nullptr;
    obs::Counter* anomalies_flagged = nullptr;
    obs::Counter* anomalous_windows = nullptr;
    obs::Counter* gaps_observed = nullptr;
    obs::Histogram* batch_rows = nullptr;
    obs::Histogram* score_ns = nullptr;
    bool bound = false;
  };

  Metrics& m() const;
  static SourceWindowConfig engine_config(const MobiWatchConfig& config);
  void handle_record(std::uint64_t node_id, const mobiflow::Record& record);
  /// Like handle_record, but persists the already-encoded row bytes
  /// directly (the row was produced by Record::to_kv_bytes on the agent,
  /// so storing it verbatim is byte-identical to re-encoding).
  void handle_record_row(std::uint64_t node_id,
                         const mobiflow::Record& record,
                         std::span<const std::uint8_t> row);
  void publish_incident(SourceWindowEngine::Incident incident);
  void subscribe_to_node(std::uint64_t node_id);
  void note_gap(std::uint64_t node_id, const std::string& why);

  MobiWatchConfig config_;
  double threshold_scale_ = 1.0;  // A1-adjustable
  double base_threshold_ = 0.0;
  std::shared_ptr<AnomalyDetector> detector_;
  SourceWindowEngine engine_;
  std::uint64_t next_seq_ = 1;
  mutable Metrics metrics_;
};

}  // namespace xsec::detect
