// Anomaly scorers: a uniform train/score/threshold interface over the
// autoencoder (reconstruction error) and the LSTM (prediction error),
// including the paper's 99th-percentile threshold calibration on the
// training-set scores ("assuming 1% outliers within the training set
// caused by network noise").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/plot.hpp"
#include "common/result.hpp"
#include "detect/features.hpp"
#include "dl/autoencoder.hpp"
#include "dl/lstm.hpp"

namespace xsec::detect {

/// Per-dimension standardization fitted on benign training data. Features
/// with (near-)zero benign variance — exactly the security indicator dims
/// an attack flips for the first time — get a floored std and therefore a
/// large standardized deviation, so single-record anomalies are not
/// diluted by the window's benign dimensions. Fully unsupervised: only
/// benign statistics are used.
class Standardizer {
 public:
  void fit(const dl::Matrix& data, float std_floor = 0.05f);
  bool fitted() const { return !mean_.empty(); }
  std::size_t dim() const { return mean_.size(); }

  void apply(dl::Matrix& data) const;
  void apply(std::vector<float>& row) const;

  /// Fitted statistics, exposed for model-state serialization (the SDL
  /// model store persists the scaler next to the weights — a restored
  /// detector must standardize exactly like the original).
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& inv_std() const { return inv_std_; }
  void restore(std::vector<float> mean, std::vector<float> inv_std) {
    mean_ = std::move(mean);
    inv_std_ = std::move(inv_std);
  }

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

/// Knobs for incremental (fine-tune) retraining on fresh benign windows.
/// Deliberately gentler than initial training: few epochs, low learning
/// rate, and the scaler stays FIXED so scores remain comparable across
/// model versions.
struct FineTuneConfig {
  int epochs = 4;
  std::size_t batch_size = 32;
  float learning_rate = 5e-4f;
  /// Threshold recalibration percentile over the fine-tune windows.
  double threshold_percentile = 99.0;
};

class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  virtual std::string name() const = 0;
  /// Trains on benign windows, then calibrates the detection threshold to
  /// the given percentile of the training scores.
  virtual void fit(const WindowDataset& benign) = 0;
  /// Scores every window of the dataset.
  virtual std::vector<double> score(const WindowDataset& data) = 0;
  /// Window labels matching score() rows (AE vs LSTM window conventions).
  virtual std::vector<bool> labels(const WindowDataset& data) const = 0;
  /// Scores a single window of `n_rows` consecutive raw feature rows laid
  /// out contiguously row-major at `rows` (the allocation-free inference
  /// path in the MobiWatch xApp). For the LSTM, the last row is the
  /// prediction target.
  virtual double score_window(const float* rows, std::size_t n_rows) = 0;
  /// Convenience wrapper for callers holding per-record row vectors.
  double score_window(const std::vector<std::vector<float>>& rows);
  /// Scores `n_windows` overlapping sliding windows in one batched pass.
  /// `rows` points at a contiguous row-major block of feature rows of
  /// width `row_dim`; window w spans rows [w, w + rows_per_window) and its
  /// score lands in scores[w], bit-identical to scoring each window via
  /// score_window(). The block therefore holds n_windows +
  /// rows_per_window - 1 rows. The default loops over score_window();
  /// the concrete detectors batch the whole block through their
  /// preallocated inference workspace.
  virtual void score_windows(const float* rows, std::size_t row_dim,
                             std::size_t rows_per_window,
                             std::size_t n_windows, double* scores);
  /// Rows a single inference window must contain.
  virtual std::size_t rows_needed(std::size_t window_size) const = 0;

  /// An independent inference replica: same weights, scaler, and threshold,
  /// but private inference workspaces, so the clone can score on another
  /// thread concurrently with the original (and with sibling clones).
  /// Scores are bit-identical to the original's. Returns nullptr when the
  /// detector has no replica support (e.g. deliberately stateful test
  /// scorers) — callers must then fall back to serialized scoring.
  virtual std::unique_ptr<AnomalyDetector> clone_for_inference() {
    return nullptr;
  }

  /// Serializes the detector's full inference state — architecture,
  /// scaler, threshold, and weights — into a self-describing blob that
  /// restore_detector() turns back into an equivalent detector. Empty
  /// means the detector has no serialization support.
  virtual Bytes save_state() { return {}; }

  /// Incrementally retrains on `n_windows` benign windows laid out
  /// contiguously at `windows`, each `n_rows` feature rows (= rows_needed)
  /// of the detector's feature dim. The scaler is kept fixed and the
  /// threshold is recalibrated over the fine-tune windows. Returns false
  /// when unsupported or the layout does not match.
  virtual bool fine_tune(const float* windows, std::size_t n_windows,
                         std::size_t n_rows, const FineTuneConfig& tune) {
    (void)windows;
    (void)n_windows;
    (void)n_rows;
    (void)tune;
    return false;
  }

  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }
  bool is_anomalous(double score) const { return score > threshold_; }

 protected:
  void calibrate(std::vector<double> training_scores, double percentile_p) {
    if (!training_scores.empty())
      threshold_ = percentile(std::move(training_scores), percentile_p);
  }

  double threshold_ = 0.0;
};

struct DetectorConfig {
  double threshold_percentile = 99.0;  // the paper's choice
  int epochs = 30;
  float learning_rate = 3e-3f;
  std::size_t batch_size = 32;
  std::uint64_t seed = 1234;
  /// Window scoring for the autoencoder. kMaxRecord takes the worst
  /// per-record reconstruction error within the window, so a single
  /// anomalous record is not diluted by its benign neighbours; kMean is
  /// the plain whole-window MSE (kept for the ablation bench).
  enum class AeScore { kMaxRecord, kMean };
  AeScore ae_score = AeScore::kMaxRecord;
  /// LSTM scoring: kMaxStep takes the worst per-step next-record
  /// prediction error across the window (catches the anomaly wherever it
  /// sits); kNextOnly is the paper's literal x̂_{i+N} formulation (kept for
  /// the ablation bench).
  enum class LstmScore { kMaxStep, kNextOnly };
  LstmScore lstm_score = LstmScore::kMaxStep;
};

class AutoencoderDetector : public AnomalyDetector {
 public:
  AutoencoderDetector(std::size_t window_size, std::size_t feature_dim,
                      DetectorConfig config = {},
                      std::vector<std::size_t> hidden = {128, 32});

  std::string name() const override { return "Autoencoder"; }
  void fit(const WindowDataset& benign) override;
  std::vector<double> score(const WindowDataset& data) override;
  std::vector<bool> labels(const WindowDataset& data) const override {
    return data.ae_labels();
  }
  using AnomalyDetector::score_window;
  double score_window(const float* rows, std::size_t n_rows) override;
  void score_windows(const float* rows, std::size_t row_dim,
                     std::size_t rows_per_window, std::size_t n_windows,
                     double* scores) override;
  std::size_t rows_needed(std::size_t window_size) const override {
    return window_size;
  }
  std::unique_ptr<AnomalyDetector> clone_for_inference() override;
  Bytes save_state() override;
  bool fine_tune(const float* windows, std::size_t n_windows,
                 std::size_t n_rows, const FineTuneConfig& tune) override;

  dl::Autoencoder& model() { return model_; }
  /// Fits the input standardizer (called automatically by fit(); exposed
  /// for the cross-validation harness which trains on row subsets).
  void fit_scaler(const dl::Matrix& raw_windows) { scaler_.fit(raw_windows); }
  /// Scores rows of an already-flattened RAW window matrix (shared by
  /// fit, score, and the ablation bench). Standardization is applied
  /// internally.
  std::vector<double> window_scores(const dl::Matrix& raw_windows);
  /// Standardizes a raw window matrix (for callers training via model()).
  dl::Matrix standardize(const dl::Matrix& raw_windows) const;

 private:
  friend Result<std::unique_ptr<AnomalyDetector>> restore_detector(
      const Bytes& state);

  std::size_t window_size_;
  std::size_t feature_dim_;
  DetectorConfig config_;
  dl::Autoencoder model_;
  Standardizer scaler_;
  /// Batch-assembly buffer for the inference path; grows to the largest
  /// batch seen and then never reallocates.
  dl::Matrix infer_input_;
};

class LstmDetector : public AnomalyDetector {
 public:
  LstmDetector(std::size_t window_size, std::size_t feature_dim,
               DetectorConfig config = {}, std::size_t hidden_dim = 64);

  std::string name() const override { return "LSTM"; }
  void fit(const WindowDataset& benign) override;
  std::vector<double> score(const WindowDataset& data) override;
  std::vector<bool> labels(const WindowDataset& data) const override {
    return data.lstm_labels();
  }
  using AnomalyDetector::score_window;
  double score_window(const float* rows, std::size_t n_rows) override;
  void score_windows(const float* rows, std::size_t row_dim,
                     std::size_t rows_per_window, std::size_t n_windows,
                     double* scores) override;
  std::size_t rows_needed(std::size_t window_size) const override {
    return window_size + 1;  // window plus the observed next record
  }
  std::unique_ptr<AnomalyDetector> clone_for_inference() override;
  Bytes save_state() override;
  bool fine_tune(const float* windows, std::size_t n_windows,
                 std::size_t n_rows, const FineTuneConfig& tune) override;

  dl::LstmPredictor& model() { return model_; }
  void fit_scaler(const std::vector<dl::SequenceSample>& raw_samples);
  /// Standardizes raw samples for train/score (shared by fit and CV).
  std::vector<dl::SequenceSample> standardize(
      const std::vector<dl::SequenceSample>& raw_samples) const;
  /// Scores STANDARDIZED samples according to the configured score mode.
  std::vector<double> sample_errors(
      const std::vector<dl::SequenceSample>& standardized);

 private:
  friend Result<std::unique_ptr<AnomalyDetector>> restore_detector(
      const Bytes& state);

  std::size_t window_size_;
  std::size_t feature_dim_;
  DetectorConfig config_;
  dl::LstmPredictor model_;
  Standardizer scaler_;
  /// Inference workspace: the scaled copy of the shared row block plus the
  /// LSTM's own fused-cell buffers. Warmed once, reused for every batch.
  dl::Matrix infer_rows_;
  dl::LstmPredictor::Workspace lstm_ws_;
};

/// Reconstructs a detector from a save_state() blob: validates the header,
/// rebuilds the architecture it describes, and loads scaler + threshold +
/// weights. Any malformed, truncated, or shape-mismatched blob is an
/// error, never a half-initialized detector.
Result<std::unique_ptr<AnomalyDetector>> restore_detector(const Bytes& state);

}  // namespace xsec::detect
