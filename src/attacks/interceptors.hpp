// MiTM radio interceptors — in-path adversaries that overwrite protocol
// messages on the air interface (overshadowing [32, 40, 62]).
#pragma once

#include <optional>

#include "ran/codec.hpp"
#include "sim/radio.hpp"

namespace xsec::attacks {

/// Passive paging-channel sniffer: harvests every 5G-S-TMSI broadcast on
/// the paging channel. This is how the Blind DoS attacker learns its
/// victim's temporary identity in the first place.
class PagingSniffer : public sim::FrameInterceptor {
 public:
  std::optional<ran::AirFrame> on_downlink(
      const ran::AirFrame& frame) override;

  const std::vector<std::uint64_t>& sniffed_tmsis() const { return sniffed_; }

 private:
  std::vector<std::uint64_t> sniffed_;
};

/// Overwrites the first downlink AuthenticationRequest it sees (after
/// arming) with an IdentityRequest(SUCI), the LTrack-style downlink
/// identity extraction of Figure 2a. One-shot: the attacker targets one
/// victim registration.
class DownlinkIdentityOverwriter : public sim::FrameInterceptor {
 public:
  std::optional<ran::AirFrame> on_downlink(
      const ran::AirFrame& frame) override;

  void arm() { armed_ = true; }
  /// Restricts the overwrite to one radio endpoint (the chosen victim).
  void set_target_tag(std::uint64_t tag) { target_tag_ = tag; }
  bool fired() const { return fired_; }
  /// RNTI of the victimised connection (valid once fired).
  std::optional<ran::Rnti> victim_rnti() const { return victim_rnti_; }

 private:
  bool armed_ = false;
  bool fired_ = false;
  std::optional<std::uint64_t> target_tag_;
  std::optional<ran::Rnti> victim_rnti_;
};

/// Bidding-down MiTM: spoofs the UE security capabilities inside the first
/// uplink RegistrationRequest to "null algorithms only", then also
/// downgrades the resulting downlink RRC SecurityModeCommand, forcing the
/// session onto NEA0/NIA0.
class CapabilityBiddingDown : public sim::FrameInterceptor {
 public:
  std::optional<ran::AirFrame> on_uplink(const ran::AirFrame& frame) override;
  std::optional<ran::AirFrame> on_downlink(
      const ran::AirFrame& frame) override;

  void arm() { armed_ = true; }
  void set_target_tag(std::uint64_t tag) { target_tag_ = tag; }
  bool fired() const { return fired_; }
  std::optional<ran::Rnti> victim_rnti() const { return victim_rnti_; }
  std::optional<std::uint64_t> victim_tag() const { return victim_tag_; }

 private:
  bool armed_ = false;
  bool fired_ = false;
  std::optional<std::uint64_t> target_tag_;
  std::optional<ran::Rnti> victim_rnti_;
  std::optional<std::uint64_t> victim_tag_;
};

}  // namespace xsec::attacks
