// Downlink identity extraction (Figure 2a, [40] LTrack-style).
//
// A MiTM interceptor overwrites the downlink AuthenticationRequest with an
// IdentityRequest before security activation; the victim answers with its
// identity in cleartext. At the gNB tap the flow reads
// ... RegistrationRequest -> AuthenticationRequest -> IdentityResponse,
// the out-of-order univariate anomaly of Figure 2a.
#include "attacks/attack.hpp"
#include "attacks/interceptors.hpp"

namespace xsec::attacks {

namespace {

class DownlinkIdExtractionAttack : public Attack {
 public:
  std::string id() const override { return "downlink_id_extraction"; }
  std::string display_name() const override { return "Downlink ID Extr"; }
  std::string citation() const override {
    return "Kotuliak et al., \"LTrack\", USENIX Security'22";
  }

  void launch(sim::Testbed& testbed, SimTime at) override {
    interceptor_ = std::make_unique<DownlinkIdentityOverwriter>();
    testbed.cell().add_interceptor(interceptor_.get());

    victim_supi_ = ran::Supi{ran::Plmn::test_network(), 9'960'000'000ULL};
    ran::UeConfig config;
    config.supi = victim_supi_;
    config.activity_reports = 1;
    config.seed = 0xD1D;
    // identity_disclosure_bug defaults on: the victim devices in [40]
    // answer pre-security identity requests in cleartext.
    ran::Ue* victim = testbed.add_ue(config, at);

    // The attacker tracks its chosen victim's radio (in the real attack,
    // by sniffing its uplink) and overwrites only that UE's downlink.
    interceptor_->set_target_tag(testbed.tag_of(victim));
    testbed.queue().schedule_at(at, [this] { interceptor_->arm(); });
  }

  bool is_malicious(const mobiflow::Record& record) const override {
    // The out-of-order identity disclosure is the malicious entry.
    return record.msg == mobiflow::vocab::MsgType::kIdentityResponse &&
           record.supi_plain == victim_supi_.str();
  }

 private:
  ran::Supi victim_supi_;
  std::unique_ptr<DownlinkIdentityOverwriter> interceptor_;
};

}  // namespace

std::unique_ptr<Attack> make_downlink_id_extraction() {
  return std::make_unique<DownlinkIdExtractionAttack>();
}

}  // namespace xsec::attacks
