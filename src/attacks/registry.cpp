#include "attacks/attack.hpp"

namespace xsec::attacks {

std::vector<std::unique_ptr<Attack>> make_all_attacks() {
  std::vector<std::unique_ptr<Attack>> attacks;
  attacks.push_back(make_bts_dos());
  attacks.push_back(make_blind_dos());
  attacks.push_back(make_uplink_id_extraction());
  attacks.push_back(make_downlink_id_extraction());
  attacks.push_back(make_null_cipher());
  return attacks;
}

}  // namespace xsec::attacks
