// Blind DoS via S-TMSI replay ([38]).
//
// Full attack chain: the victim registers normally and goes idle; when
// mobile-terminated traffic causes the network to PAGE the victim, the
// attacker's passive sniffer harvests the broadcast 5G-S-TMSI; rogue radios
// then repeatedly present the stolen identifier in their own RRC
// connections. Authentication fails (wrong key), but the replayed temporary
// identity desynchronizes the victim's context — and leaves the
// replayed-TMSI-across-contexts pattern in the telemetry.
#include "attacks/attack.hpp"
#include "attacks/interceptors.hpp"
#include "attacks/rogue_ues.hpp"
#include "common/log.hpp"

namespace xsec::attacks {

namespace {

class BlindDosAttack : public Attack {
 public:
  explicit BlindDosAttack(int replay_count) : replay_count_(replay_count) {}

  std::string id() const override { return "blind_dos"; }
  std::string display_name() const override { return "Blind DoS"; }
  std::string citation() const override {
    return "Kim et al., \"Touching the Untouchables\", S&P'19";
  }

  void launch(sim::Testbed& testbed, SimTime at) override {
    // The attacker's passive sniffer sits on the paging channel from the
    // start.
    sniffer_ = std::make_unique<PagingSniffer>();
    testbed.cell().add_interceptor(sniffer_.get());

    // The victim: an ordinary subscriber that registers and goes idle.
    ran::Supi victim_supi{ran::Plmn::test_network(), 9'980'000'000ULL};
    ran::UeConfig victim_config;
    victim_config.supi = victim_supi;
    victim_config.deregister_at_end = false;  // stays registered at the AMF
    victim_config.activity_reports = 1;
    victim_config.seed = 0xB11D;
    victim_ = testbed.add_ue(victim_config, at);

    // Mobile-terminated traffic arrives for the (by now idle) victim: the
    // AMF pages it, exposing the S-TMSI on the broadcast channel.
    testbed.queue().schedule_at(at + SimDuration::from_ms(500),
                                [this, &testbed] {
                                  testbed.amf().page(victim_->config().supi);
                                });

    // The attacker reads the sniffed identifier and replays it.
    testbed.queue().schedule_at(
        at + SimDuration::from_ms(540), [this, &testbed] {
          if (sniffer_->sniffed_tmsis().empty()) {
            XSEC_LOG_WARN("attack",
                          "blind_dos: nothing sniffed from paging; abort");
            return;
          }
          ran::Guti stolen;
          stolen.plmn = ran::Plmn::test_network();
          stolen.amf_region = 1;
          stolen.s_tmsi =
              ran::STmsi::from_packed(sniffer_->sniffed_tmsis().front());
          for (int i = 0; i < replay_count_; ++i) {
            ran::Supi rogue_supi{ran::Plmn::test_network(),
                                 9'981'000'000ULL +
                                     static_cast<std::uint64_t>(i)};
            ran::UeConfig config;
            config.supi = rogue_supi;  // attacker's own radio identity
            config.stored_guti = stolen;  // the STOLEN victim identity
            config.deregister_at_end = false;
            config.processing_delay = SimDuration::from_ms(0);
            config.max_reject_retries = 0;
            config.seed = 0xB11D00ULL + static_cast<std::uint64_t>(i);
            ran::Ue* rogue = testbed.add_custom_ue(
                rogue_supi,
                [config](ran::UeHooks hooks) {
                  return std::make_unique<TmsiReplayUe>(config,
                                                        std::move(hooks));
                },
                testbed.now() + SimDuration::from_ms(10.0 * (i + 1)));
            rogues_.push_back(rogue);
          }
        });
  }

  bool is_malicious(const mobiflow::Record& record) const override {
    if (record.rnti == 0) return false;
    for (const ran::Ue* ue : rogues_)
      for (ran::Rnti rnti : ue->rnti_history())
        if (rnti.value == record.rnti) return true;
    return false;
  }

 private:
  int replay_count_;
  ran::Ue* victim_ = nullptr;
  std::vector<ran::Ue*> rogues_;
  std::unique_ptr<PagingSniffer> sniffer_;
};

}  // namespace

std::unique_ptr<Attack> make_blind_dos(int replay_count) {
  return std::make_unique<BlindDosAttack>(replay_count);
}

}  // namespace xsec::attacks
