#include "attacks/interceptors.hpp"

namespace xsec::attacks {

std::optional<ran::AirFrame> PagingSniffer::on_downlink(
    const ran::AirFrame& frame) {
  if (frame.radio_tag != 0) return frame;  // only the broadcast channel
  auto rrc = ran::decode_rrc(frame.rrc_wire);
  if (rrc && std::holds_alternative<ran::Paging>(rrc.value()))
    sniffed_.push_back(std::get<ran::Paging>(rrc.value()).s_tmsi_packed);
  return frame;
}

std::optional<ran::AirFrame> DownlinkIdentityOverwriter::on_downlink(
    const ran::AirFrame& frame) {
  if (!armed_ || fired_) return frame;
  if (target_tag_ && frame.radio_tag != *target_tag_) return frame;
  auto rrc = ran::decode_rrc(frame.rrc_wire);
  if (!rrc) return frame;
  auto* transfer = std::get_if<ran::DlInformationTransfer>(&rrc.value());
  if (!transfer) return frame;
  auto nas = ran::decode_nas(transfer->dedicated_nas);
  if (!nas || !std::holds_alternative<ran::AuthenticationRequest>(nas.value()))
    return frame;

  // Overshadow: replace the authentication challenge with an identity
  // request, harvesting the subscriber's identity before security starts.
  fired_ = true;
  victim_rnti_ = frame.rnti;
  ran::IdentityRequest identity_request;
  identity_request.type = ran::IdentityType::kSuci;
  ran::AirFrame overwritten = frame;
  overwritten.rrc_wire = ran::encode_rrc(ran::RrcMessage{
      ran::DlInformationTransfer{
          ran::encode_nas(ran::NasMessage{identity_request})}});
  return overwritten;
}

std::optional<ran::AirFrame> CapabilityBiddingDown::on_uplink(
    const ran::AirFrame& frame) {
  if (!armed_ || fired_) return frame;
  if (target_tag_ && frame.radio_tag != *target_tag_) return frame;
  auto rrc = ran::decode_rrc(frame.rrc_wire);
  if (!rrc) return frame;
  auto* complete = std::get_if<ran::RrcSetupComplete>(&rrc.value());
  if (!complete) return frame;
  auto nas = ran::decode_nas(complete->dedicated_nas);
  if (!nas) return frame;
  auto* registration = std::get_if<ran::RegistrationRequest>(&nas.value());
  if (!registration) return frame;

  fired_ = true;
  victim_rnti_ = frame.rnti;
  victim_tag_ = frame.radio_tag;

  // Spoof the capabilities: only the null algorithms are "supported", so
  // the network's selection falls through to NEA0/NIA0.
  ran::RegistrationRequest spoofed = *registration;
  spoofed.capabilities.nea_mask = 0b0001;  // NEA0 only
  spoofed.capabilities.nia_mask = 0b0001;  // NIA0 only
  ran::RrcSetupComplete new_complete = *complete;
  new_complete.dedicated_nas = ran::encode_nas(ran::NasMessage{spoofed});
  ran::AirFrame overwritten = frame;
  overwritten.rrc_wire = ran::encode_rrc(ran::RrcMessage{new_complete});
  return overwritten;
}

std::optional<ran::AirFrame> CapabilityBiddingDown::on_downlink(
    const ran::AirFrame& frame) {
  if (!fired_ || !victim_rnti_ || frame.rnti != victim_rnti_) return frame;
  auto rrc = ran::decode_rrc(frame.rrc_wire);
  if (!rrc) return frame;
  auto* smc = std::get_if<ran::RrcSecurityModeCommand>(&rrc.value());
  if (!smc) return frame;

  // Also null out the AS security negotiation for the same victim.
  ran::RrcSecurityModeCommand downgraded = *smc;
  downgraded.cipher = ran::CipherAlg::kNea0;
  downgraded.integrity = ran::IntegrityAlg::kNia0;
  ran::AirFrame overwritten = frame;
  overwritten.rrc_wire = ran::encode_rrc(ran::RrcMessage{downgraded});
  return overwritten;
}

}  // namespace xsec::attacks
