// Attack framework.
//
// Each of the paper's five end-to-end attacks is packaged as an Attack that
// installs itself into a running testbed (as rogue UEs and/or MiTM radio
// interceptors — the same two adversary embodiments the threat model in
// §2.2 allows) and afterwards provides the ground-truth labeling predicate
// used to build the labeled attack dataset.
#pragma once

#include <memory>
#include <string>

#include "mobiflow/trace.hpp"
#include "sim/testbed.hpp"

namespace xsec::attacks {

class Attack {
 public:
  virtual ~Attack() = default;

  /// Stable identifier ("bts_dos", "blind_dos", "uplink_id_extraction",
  /// "downlink_id_extraction", "null_cipher").
  virtual std::string id() const = 0;
  /// Human-readable name matching the paper's Table 3 rows.
  virtual std::string display_name() const = 0;
  /// Literature reference.
  virtual std::string citation() const = 0;

  /// Installs the attack into the testbed, starting at `at`.
  virtual void launch(sim::Testbed& testbed, SimTime at) = 0;

  /// Ground truth: is this collected record part of the attack? Valid
  /// after the simulation ran.
  virtual bool is_malicious(const mobiflow::Record& record) const = 0;
};

std::unique_ptr<Attack> make_bts_dos(
    int connection_count = 10,
    SimDuration spacing = SimDuration::from_ms(5));
std::unique_ptr<Attack> make_blind_dos(int replay_count = 4);
std::unique_ptr<Attack> make_uplink_id_extraction();
std::unique_ptr<Attack> make_downlink_id_extraction();
std::unique_ptr<Attack> make_null_cipher();

/// All five attacks of the paper's evaluation, in Table 3 order.
std::vector<std::unique_ptr<Attack>> make_all_attacks();

}  // namespace xsec::attacks
