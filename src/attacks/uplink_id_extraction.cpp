// Uplink identity extraction ([32], AdaptOver-style).
//
// The adversary overshadows the victim's uplink so its registration runs
// with the null SUCI protection scheme, disclosing the permanent identity
// in cleartext while the message SEQUENCE stays fully standard-compliant —
// the paper's hardest attack to detect. We model the post-overshadow victim
// state directly (force_null_scheme_suci); the radio-layer overshadowing
// itself has no additional telemetry footprint, so the substitution
// preserves exactly what the detector and the LLM can observe.
#include "attacks/attack.hpp"

namespace xsec::attacks {

namespace {

class UplinkIdExtractionAttack : public Attack {
 public:
  std::string id() const override { return "uplink_id_extraction"; }
  std::string display_name() const override { return "Uplink ID Extr"; }
  std::string citation() const override {
    return "Erni et al., \"AdaptOver\", MobiCom'22";
  }

  void launch(sim::Testbed& testbed, SimTime at) override {
    victim_supi_ = ran::Supi{ran::Plmn::test_network(), 9'970'000'000ULL};
    ran::UeConfig config;
    config.supi = victim_supi_;
    config.force_null_scheme_suci = true;  // overshadow-downgraded victim
    config.activity_reports = 1;
    config.seed = 0x0A9E;
    testbed.add_ue(config, at);
  }

  bool is_malicious(const mobiflow::Record& record) const override {
    // The disclosure itself is the malicious telemetry entry.
    return record.supi_plain == victim_supi_.str();
  }

 private:
  ran::Supi victim_supi_;
};

}  // namespace

std::unique_ptr<Attack> make_uplink_id_extraction() {
  return std::make_unique<UplinkIdExtractionAttack>();
}

}  // namespace xsec::attacks
