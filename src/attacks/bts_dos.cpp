// BTS resource-depletion DoS (Figure 2b, [38]).
//
// A rogue UE establishes a rapid succession of RRC connections, each from a
// fresh random identity, completing registration up to the authentication
// challenge and then going silent. The gNB's bounded UE-context table fills
// with half-open contexts and legitimate UEs get RRCReject.
#include <set>

#include "attacks/attack.hpp"
#include "attacks/rogue_ues.hpp"

namespace xsec::attacks {

namespace {

class BtsDosAttack : public Attack {
 public:
  BtsDosAttack(int connection_count, SimDuration spacing)
      : connection_count_(connection_count), spacing_(spacing) {}

  std::string id() const override { return "bts_dos"; }
  std::string display_name() const override { return "BTS DoS"; }
  std::string citation() const override {
    return "Kim et al., \"Touching the Untouchables\", S&P'19";
  }

  void launch(sim::Testbed& testbed, SimTime at) override {
    for (int i = 0; i < connection_count_; ++i) {
      // The attacker's SDR cycles through fabricated subscriptions.
      ran::Supi supi{ran::Plmn::test_network(),
                     9'990'000'000ULL + static_cast<std::uint64_t>(i)};
      ran::UeConfig config;
      config.supi = supi;
      config.capabilities = ran::SecurityCapabilities{0b0011, 0b0010};
      config.establishment_cause = ran::EstablishmentCause::kMoSignalling;
      config.deregister_at_end = false;
      config.processing_delay = SimDuration::from_ms(0);  // scripted stack
      config.seed = 0xD05ULL + static_cast<std::uint64_t>(i);
      ran::Ue* ue = testbed.add_custom_ue(
          supi,
          [config](ran::UeHooks hooks) {
            return std::make_unique<StallAtAuthUe>(config, std::move(hooks));
          },
          at + spacing_ * static_cast<double>(i));
      rogues_.push_back(ue);
    }
  }

  bool is_malicious(const mobiflow::Record& record) const override {
    if (record.rnti == 0) return false;
    for (const ran::Ue* ue : rogues_)
      for (ran::Rnti rnti : ue->rnti_history())
        if (rnti.value == record.rnti) return true;
    return false;
  }

 private:
  int connection_count_;
  SimDuration spacing_;
  std::vector<ran::Ue*> rogues_;  // owned by the testbed
};

}  // namespace

std::unique_ptr<Attack> make_bts_dos(int connection_count,
                                     SimDuration spacing) {
  return std::make_unique<BtsDosAttack>(connection_count, spacing);
}

}  // namespace xsec::attacks
