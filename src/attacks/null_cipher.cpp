// Null cipher & integrity downgrade ([37]).
//
// A bidding-down MiTM spoofs the victim's advertised security capabilities
// to "NEA0/NIA0 only" inside its RegistrationRequest; the network's
// algorithm selection falls through to the null algorithms and the whole
// session runs unprotected. The victim carries the real-world compliance
// bug of not verifying the replayed capabilities.
#include "attacks/attack.hpp"
#include "attacks/interceptors.hpp"

namespace xsec::attacks {

namespace {

class NullCipherAttack : public Attack {
 public:
  std::string id() const override { return "null_cipher"; }
  std::string display_name() const override { return "Null Cipher & Int."; }
  std::string citation() const override {
    return "Hussain et al., \"5GReasoner\", CCS'19";
  }

  void launch(sim::Testbed& testbed, SimTime at) override {
    interceptor_ = std::make_unique<CapabilityBiddingDown>();
    testbed.cell().add_interceptor(interceptor_.get());

    ran::Supi victim_supi{ran::Plmn::test_network(), 9'950'000'000ULL};
    ran::UeConfig config;
    config.supi = victim_supi;
    config.accept_capability_mismatch = true;  // the exploited bug
    config.activity_reports = 1;
    config.seed = 0x9CAFE;
    victim_ = testbed.add_ue(config, at);

    interceptor_->set_target_tag(testbed.tag_of(victim_));
    testbed.queue().schedule_at(at, [this] { interceptor_->arm(); });
  }

  bool is_malicious(const mobiflow::Record& record) const override {
    if (!interceptor_ || !interceptor_->fired()) return false;
    auto victim_rnti = interceptor_->victim_rnti();
    if (!victim_rnti || record.rnti != victim_rnti->value) return false;
    // Every message of the downgraded session that carries null protection
    // state is malicious telemetry.
    return record.cipher_alg == mobiflow::vocab::CipherAlg::kNea0 ||
           record.integrity_alg == mobiflow::vocab::IntegrityAlg::kNia0;
  }

 private:
  ran::Ue* victim_ = nullptr;
  std::unique_ptr<CapabilityBiddingDown> interceptor_;
};

}  // namespace

std::unique_ptr<Attack> make_null_cipher() {
  return std::make_unique<NullCipherAttack>();
}

}  // namespace xsec::attacks
