// Rogue UE behaviours shared by the attack implementations — malicious
// logic "inserted into the UE stack", as the paper does with OAI.
#pragma once

#include "ran/ue.hpp"

namespace xsec::attacks {

/// A UE that follows the attach flow up to the authentication challenge
/// and then goes silent, leaving a half-open context at the gNB. The BTS
/// DoS attack runs a stream of these (Figure 2b).
class StallAtAuthUe : public ran::Ue {
 public:
  using Ue::Ue;

 protected:
  void handle_authentication_request(
      const ran::AuthenticationRequest& msg) override {
    (void)msg;  // never answer; the context stays held until GC
  }
};

/// A UE that presents a stolen 5G-S-TMSI (stored_guti in its config) but
/// cannot complete authentication for the victim's subscription. Its
/// default AUTN verification fails against its own (wrong) key, producing
/// the AuthenticationFailure the Blind DoS trace shows.
class TmsiReplayUe : public ran::Ue {
 public:
  using Ue::Ue;
};

}  // namespace xsec::attacks
