// Local float tanh for the DL hot loops.
//
// glibc's tanhf is the classic fdlibm routine behind a PLT call; on the
// LSTM gate pass (two tanh per hidden unit per step) the call overhead and
// the out-of-line expm1f dominate scoring latency. This header carries the
// same fdlibm algorithm as inline functions, so `tanh_scalar` returns
// bit-identical results to std::tanh while inlining into the gate loops.
// The test suite asserts bit-equality against std::tanh across random and
// edge-case inputs; scripts/verify_tanhf.cpp sweeps every float bit
// pattern.
//
// Derived from fdlibm (s_tanhf.c, s_expm1f.c):
//
// ====================================================
// Copyright (C) 1993 by Sun Microsystems, Inc. All rights reserved.
//
// Developed at SunPro, a Sun Microsystems, Inc. business.
// Permission to use, copy, modify, and distribute this
// software is freely granted, provided that this notice
// is preserved.
// ====================================================
//
// Error-handling side effects (errno, FP exception flags) are omitted:
// only return values matter to the models, and the DL code never inspects
// the flags.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace xsec::dl {
namespace tanhf_detail {

inline std::uint32_t float_bits(float x) {
  std::uint32_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

inline float bits_float(std::uint32_t u) {
  float x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

inline constexpr float kOne = 1.0f;
inline constexpr float kTwo = 2.0f;
inline constexpr float kTiny = 1.0e-30f;
inline constexpr float kHuge = 1.0e+30f;
inline constexpr float kLn2Hi = std::bit_cast<float>(0x3f317180u);
inline constexpr float kLn2Lo = std::bit_cast<float>(0x3717f7d1u);
inline constexpr float kInvLn2 = std::bit_cast<float>(0x3fb8aa3bu);
// Rational-approximation coefficients. glibc's flt-32 expm1f carries the
// full five-term set of the double-precision routine (rounded to float),
// not the two-term set of Sun's original float version — the extra terms
// change low-bit rounding, so they must match exactly.
inline constexpr float kQ1 = std::bit_cast<float>(0xbd088889u);
inline constexpr float kQ2 = std::bit_cast<float>(0x3ad00d01u);
inline constexpr float kQ3 = std::bit_cast<float>(0xb8a670cdu);
inline constexpr float kQ4 = std::bit_cast<float>(0x36867e54u);
inline constexpr float kQ5 = std::bit_cast<float>(0xb457edbbu);

/// fdlibm expm1f. Same float-for-float operation sequence as the libm
/// routine, so every rounding step matches.
inline float expm1f_local(float x) {
  float y, hi, lo, c = 0.0f, t, e, hxs, hfx, r1, twopk;
  std::int32_t k, xsb;
  std::uint32_t hx;

  hx = float_bits(x);
  xsb = static_cast<std::int32_t>(hx & 0x80000000u);
  hx &= 0x7fffffffu;

  // Huge and non-finite arguments.
  if (hx >= 0x4195b844u) {    // |x| >= 27*ln2
    if (hx >= 0x42b17218u) {  // |x| >= 88.721...
      if (hx > 0x7f800000u) return x + x;                    // NaN
      if (hx == 0x7f800000u) return (xsb == 0) ? x : -1.0f;  // +-inf
      if (x > 0.0f) return kHuge * kHuge;                    // overflow
    }
    if (xsb != 0) return kTiny - kOne;  // x < -27*ln2: expm1 = -1
  }

  // Argument reduction.
  if (hx > 0x3eb17218u) {    // |x| > 0.5 ln2
    if (hx < 0x3F851592u) {  // and |x| < 1.5 ln2
      if (xsb == 0) {
        hi = x - kLn2Hi;
        lo = kLn2Lo;
        k = 1;
      } else {
        hi = x + kLn2Hi;
        lo = -kLn2Lo;
        k = -1;
      }
    } else {
      k = static_cast<std::int32_t>(kInvLn2 * x +
                                    ((xsb == 0) ? 0.5f : -0.5f));
      t = static_cast<float>(k);
      hi = x - t * kLn2Hi;  // t*ln2_hi is exact here
      lo = t * kLn2Lo;
    }
    x = hi - lo;
    c = (hi - x) - lo;
  } else if (hx < 0x33000000u) {  // |x| < 2**-25
    return x;
  } else {
    k = 0;
  }

  // x is now in primary range.
  hfx = 0.5f * x;
  hxs = x * hfx;
  r1 = kOne +
       hxs * (kQ1 + hxs * (kQ2 + hxs * (kQ3 + hxs * (kQ4 + hxs * kQ5))));
  t = 3.0f - r1 * hfx;
  e = hxs * ((r1 - t) / (6.0f - x * t));
  if (k == 0) return x - (x * e - hxs);  // c is 0
  twopk = bits_float(static_cast<std::uint32_t>(0x7f + k) << 23);  // 2^k
  e = (x * (e - c) - c);
  e -= hxs;
  if (k == -1) return 0.5f * (x - e) - 0.5f;
  if (k == 1) {
    if (x < -0.25f) return -2.0f * (e - (x + 0.5f));
    return kOne + 2.0f * (x - e);
  }
  if (k <= -2 || k > 56) {  // suffices to return exp(x)-1
    y = kOne - (e - x);
    if (k == 128)
      y = y * 2.0f * 0x1p127f;
    else
      y = y * twopk;
    return y - kOne;
  }
  if (k < 23) {
    t = bits_float(0x3f800000u - (0x1000000u >> k));  // 1 - 2^-k
    y = t - (e - x);
    y = y * twopk;
  } else {
    t = bits_float(static_cast<std::uint32_t>(0x7f - k) << 23);  // 2^-k
    y = x - (e + t);
    y += kOne;
    y = y * twopk;
  }
  return y;
}

}  // namespace tanhf_detail

/// Bit-identical to std::tanh(float), inlineable into the gate loops.
inline float tanh_scalar(float x) {
  using namespace tanhf_detail;
  float t, z;
  std::int32_t jx, ix;

  jx = static_cast<std::int32_t>(float_bits(x));
  ix = jx & 0x7fffffff;

  // x is INF or NaN.
  if (ix >= 0x7f800000) {
    if (jx >= 0) return kOne / x + kOne;  // tanh(+inf)=+1
    return kOne / x - kOne;               // tanh(-inf)=-1, tanh(NaN)=NaN
  }

  if (ix < 0x41b00000) {    // |x| < 22
    if (ix == 0) return x;  // +-0
    if (ix < 0x24000000)    // |x| < 2**-55
      return x * (kOne + x);
    if (ix >= 0x3f800000) {  // |x| >= 1
      t = expm1f_local(kTwo * std::fabs(x));
      z = kOne - kTwo / (t + kTwo);
    } else {
      t = expm1f_local(-kTwo * std::fabs(x));
      z = -t / (t + kTwo);
    }
  } else {
    // |x| >= 22: saturated.
    z = kOne - kTiny;
  }
  return (jx >= 0) ? z : -z;
}

/// out[i] = tanh_scalar(x[i]) for i in [0, n), bit-identical, but eight
/// lanes at a time on AVX2 machines (see tanhf.cpp). In-place (out == x)
/// is allowed.
void tanh_many(const float* x, float* out, std::size_t n);

}  // namespace xsec::dl
