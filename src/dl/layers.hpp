// Neural-network layers with explicit forward/backward passes.
//
// Layers cache what their backward pass needs; gradients accumulate into
// per-parameter buffers that the optimizer consumes. No autograd — each
// layer's backward is written out, which keeps the LSTM's BPTT legible.
//
// Besides the training forward(), every layer offers infer_into(): an
// inference-only forward writing into a caller-owned buffer with no
// gradient caching and no heap allocation once the buffer has capacity.
// Sequential chains them through two ping-pong buffers it owns, so a
// whole-network inference pass allocates nothing in steady state.
#pragma once

#include <memory>
#include <vector>

#include "dl/tanhf.hpp"
#include "dl/tensor.hpp"

namespace xsec::dl {

/// A trainable parameter: the optimizer updates `value` using `grad`.
struct Param {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Matrix forward(const Matrix& x) = 0;
  virtual Matrix backward(const Matrix& grad_out) = 0;
  /// Inference-only forward into `out` (no caching; bit-identical to
  /// forward()). `out` must not alias `x`. The default falls back to the
  /// allocating forward for layers without a fused path.
  virtual void infer_into(const Matrix& x, Matrix& out) { out = forward(x); }
  virtual std::vector<Param> params() { return {}; }
  virtual void zero_grad() {}
};

class Linear : public Layer {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void infer_into(const Matrix& x, Matrix& out) override;
  std::vector<Param> params() override;
  void zero_grad() override;

  std::size_t in_dim() const { return weight_.rows(); }
  std::size_t out_dim() const { return weight_.cols(); }
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }

 private:
  Matrix weight_;  // in × out
  Matrix bias_;    // 1 × out
  Matrix grad_weight_;
  Matrix grad_bias_;
  Matrix cached_input_;
};

class Relu : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void infer_into(const Matrix& x, Matrix& out) override;

 private:
  Matrix cached_input_;
};

class Sigmoid : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void infer_into(const Matrix& x, Matrix& out) override;

 private:
  Matrix cached_output_;
};

class Tanh : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void infer_into(const Matrix& x, Matrix& out) override;

 private:
  Matrix cached_output_;
};

/// Sequential container (owns its layers).
class Sequential : public Layer {
 public:
  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    params_dirty_ = true;
  }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  /// Inference pass through the container's own ping-pong buffers; the
  /// returned reference stays valid until the next infer()/infer_into().
  /// Zero heap allocations once the buffers are warmed at the largest
  /// batch seen.
  const Matrix& infer(const Matrix& x);
  void infer_into(const Matrix& x, Matrix& out) override { out = infer(x); }
  /// Cached across calls (rebuilt only after add()); the optimizer-step
  /// path no longer walks every layer per invocation.
  std::vector<Param> params() override;
  void zero_grad() override;
  std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  /// Param pointers target the Layer objects (heap-owned, stable across
  /// moves of this container), so the cache survives Sequential moves.
  std::vector<Param> params_cache_;
  bool params_dirty_ = true;
  Matrix infer_buffers_[2];
};

// Element-wise helpers shared with the LSTM cell. tanh_scalar lives in
// tanhf.hpp (included above) as an inline function.
float sigmoid_scalar(float x);
/// Vectorized sigmoid over a contiguous span, bit-identical per element to
/// sigmoid_scalar (see sigmoidf.cpp). In-place (out == x) is allowed.
void sigmoid_many(const float* x, float* out, std::size_t n);
Matrix sigmoid_mat(const Matrix& x);
Matrix tanh_mat(const Matrix& x);
void sigmoid_into(const Matrix& x, Matrix& out);
void tanh_into(const Matrix& x, Matrix& out);
void sigmoid_inplace(Matrix& x);
void tanh_inplace(Matrix& x);
void relu_into(const Matrix& x, Matrix& out);

}  // namespace xsec::dl
