// Neural-network layers with explicit forward/backward passes.
//
// Layers cache what their backward pass needs; gradients accumulate into
// per-parameter buffers that the optimizer consumes. No autograd — each
// layer's backward is written out, which keeps the LSTM's BPTT legible.
#pragma once

#include <memory>
#include <vector>

#include "dl/tensor.hpp"

namespace xsec::dl {

/// A trainable parameter: the optimizer updates `value` using `grad`.
struct Param {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Matrix forward(const Matrix& x) = 0;
  virtual Matrix backward(const Matrix& grad_out) = 0;
  virtual std::vector<Param> params() { return {}; }
  virtual void zero_grad() {}
};

class Linear : public Layer {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param> params() override;
  void zero_grad() override;

  std::size_t in_dim() const { return weight_.rows(); }
  std::size_t out_dim() const { return weight_.cols(); }
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }

 private:
  Matrix weight_;  // in × out
  Matrix bias_;    // 1 × out
  Matrix grad_weight_;
  Matrix grad_bias_;
  Matrix cached_input_;
};

class Relu : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  Matrix cached_input_;
};

class Sigmoid : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  Matrix cached_output_;
};

class Tanh : public Layer {
 public:
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;

 private:
  Matrix cached_output_;
};

/// Sequential container (owns its layers).
class Sequential : public Layer {
 public:
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Param> params() override;
  void zero_grad() override;
  std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Element-wise helpers shared with the LSTM cell.
float sigmoid_scalar(float x);
Matrix sigmoid_mat(const Matrix& x);
Matrix tanh_mat(const Matrix& x);

}  // namespace xsec::dl
