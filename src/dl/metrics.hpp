// Binary-classification metrics for the detection evaluation (Table 2).
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace xsec::dl {

struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  double accuracy() const;
  /// Precision/recall/F1 are NaN when undefined (no positive labels or
  /// predictions) — the paper reports these cells as "N/A".
  double precision() const;
  double recall() const;
  double f1() const;

  void add(bool predicted_positive, bool actually_positive);
};

/// Builds a confusion matrix from score vectors and a threshold: a sample
/// is predicted anomalous when its score strictly exceeds the threshold.
Confusion evaluate_threshold(const std::vector<double>& scores,
                             const std::vector<bool>& labels,
                             double threshold);

/// K-fold cross-validation index split (deterministic contiguous folds, as
/// used for the paper's benign-dataset accuracy numbers).
std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
kfold_indices(std::size_t n, std::size_t k);

std::string format_metric(double value, int decimals = 2);

}  // namespace xsec::dl
