// Vectorized logistic sigmoid, bit-identical to sigmoid_scalar (which is
// 1.0f / (1.0f + std::exp(-x)) through the platform libm).
//
// glibc dispatches expf through an ifunc: on CPUs with AVX2+FMA it selects
// the FMA build of the shared exp/exp2/expf kernel (originally from ARM's
// optimized-routines, EXP2F_TABLE_BITS = 5): widen to double, split
// x/ln2 * 32 into integer k and remainder r with the 0x1.8p52 shift trick,
// look the fractional power 2^(k/32) up in a 32-entry table, patch the
// exponent bits with k, and evaluate a degree-3 polynomial in r — all with
// the exact FMA contractions the compiler emitted for that build.
//
// exp_lanes() below replays that instruction sequence four doubles at a
// time (fused ops where the libm disassembly has vfmadd/vfmsub, plain
// mul/add/sub where it does not), so each lane performs the same IEEE
// operations in the same order as one scalar call and the float results
// round identically. The table and coefficients are the same constants
// glibc carries in its .rodata. Inputs whose magnitude reaches the
// overflow/underflow region (|x| >= 0x1.6p6 ~ 88, which also catches
// inf/NaN) divert the whole 8-lane block to sigmoid_scalar, mirroring the
// abstop12 early-out in libm.
//
// The fast path only engages when __builtin_cpu_supports reports both AVX2
// and FMA — the same predicate glibc's resolver uses to pick the FMA expf —
// so the scalar reference we must match bit-for-bit is that same kernel.
// Everywhere else sigmoid_many falls back to looping sigmoid_scalar.
// scripts/verify_tanhf.cpp sweeps all 2^32 float bit patterns through both
// paths to prove the identity on this platform.
#include "dl/layers.hpp"

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace xsec::dl {

namespace {

void sigmoid_many_base(const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = sigmoid_scalar(x[i]);
}

#if defined(__x86_64__) || defined(__i386__)

// 2^(i/32) for i = 0..31, bit patterns as shipped in glibc's .rodata
// (__exp2f_data.tab). The low bits double as correction terms; adding
// k << 47 to entry (k & 31) yields 2^(k/32) with the integer part of
// k/32 folded straight into the exponent field.
alignas(32) const std::uint64_t kExpTab[32] = {
    0x3ff0000000000000ull, 0x3fefd9b0d3158574ull, 0x3fefb5586cf9890full,
    0x3fef9301d0125b51ull, 0x3fef72b83c7d517bull, 0x3fef54873168b9aaull,
    0x3fef387a6e756238ull, 0x3fef1e9df51fdee1ull, 0x3fef06fe0a31b715ull,
    0x3feef1a7373aa9cbull, 0x3feedea64c123422ull, 0x3feece086061892dull,
    0x3feebfdad5362a27ull, 0x3feeb42b569d4f82ull, 0x3feeab07dd485429ull,
    0x3feea47eb03a5585ull, 0x3feea09e667f3bcdull, 0x3fee9f75e8ec5f74ull,
    0x3feea11473eb0187ull, 0x3feea589994cce13ull, 0x3feeace5422aa0dbull,
    0x3feeb737b0cdc5e5ull, 0x3feec49182a3f090ull, 0x3feed503b23e255dull,
    0x3feee89f995ad3adull, 0x3feeff76f2fb5e47ull, 0x3fef199bdd85529cull,
    0x3fef3720dcef9069ull, 0x3fef5818dcfba487ull, 0x3fef7c97337b9b5full,
    0x3fefa4afa2a490daull, 0x3fefd0765b6e4540ull,
};

inline double bits_double(std::uint64_t u) {
  double d;
  __builtin_memcpy(&d, &u, sizeof(d));
  return d;
}

// Constants from the same rodata block: 32/ln2, the shift that rounds
// z = x * 32/ln2 to an integer in the low mantissa bits, and the
// polynomial coefficients pre-scaled by powers of 32 (poly_scaled[]).
const double kInvLn2N = bits_double(0x40471547652b82feull);  // 0x1.71547652b82fep+5
const double kShift = bits_double(0x4338000000000000ull);    // 0x1.8p52
const double kC0 = bits_double(0x3ebc6af84b912394ull);
const double kC1 = bits_double(0x3f2ebfce50fac4f3ull);
const double kC2 = bits_double(0x3f962e42ff0c52d6ull);

// Four-lane replay of the glibc FMA expf fast path. Callers guarantee
// every lane satisfies |x| < 0x1.62p6-ish (the abstop12 <= 0x42a check),
// so no overflow/underflow/NaN handling is needed here.
__attribute__((always_inline, target("avx2,fma"))) inline __m256d exp_lanes(
    __m256d xd) {
  const __m256d inv_ln2n = _mm256_set1_pd(kInvLn2N);
  const __m256d shift = _mm256_set1_pd(kShift);
  // z = x*InvLn2N + Shift: the fma leaves round(x*InvLn2N) in the low
  // mantissa bits; kd = z - Shift recovers it as a double.
  const __m256d z = _mm256_fmadd_pd(inv_ln2n, xd, shift);
  const __m256i ki = _mm256_castpd_si256(z);
  const __m256d kd = _mm256_sub_pd(z, shift);
  // r = x*InvLn2N - kd, fused exactly as libm computes it.
  const __m256d r = _mm256_fmsub_pd(inv_ln2n, xd, kd);
  // s = 2^(k/32): table entry for k mod 32 plus k's integer part shifted
  // into the exponent field (k << (52 - 5)). Both the mask and the shift
  // act on the full bit pattern of z, matching the scalar code — the
  // shift bits above position 16 (including Shift's own exponent) fall
  // off the top.
  const __m256i idx = _mm256_and_si256(ki, _mm256_set1_epi64x(31));
  const __m256i tab = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(kExpTab), idx, 8);
  const __m256i sbits = _mm256_add_epi64(tab, _mm256_slli_epi64(ki, 47));
  const __m256d s = _mm256_castsi256_pd(sbits);
  // Degree-3 polynomial in r with the exact contraction pattern of the
  // libm build: p = C0*r + C1; q = C2*r + 1; y = p*r^2 + q.
  const __m256d p = _mm256_fmadd_pd(_mm256_set1_pd(kC0), r, _mm256_set1_pd(kC1));
  const __m256d r2 = _mm256_mul_pd(r, r);
  const __m256d q =
      _mm256_fmadd_pd(_mm256_set1_pd(kC2), r, _mm256_set1_pd(1.0));
  const __m256d y = _mm256_fmadd_pd(p, r2, q);
  return _mm256_mul_pd(y, s);
}

__attribute__((target("avx2,fma"))) void sigmoid_many_fma(const float* x,
                                                          float* out,
                                                          std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  // Hot path iff |x| bits <= 0x42afffff (abstop12 <= 0x42a, |x| < ~88);
  // above that expf over/underflows — and inf/NaN land there too — so the
  // whole block takes the scalar route through libm.
  const __m256i lim = _mm256_set1_epi32(0x42afffff);
  const __m256 sign = _mm256_set1_ps(-0.0f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256i abits =
        _mm256_and_si256(_mm256_castps_si256(vx), abs_mask);
    if (_mm256_movemask_epi8(_mm256_cmpgt_epi32(abits, lim)) != 0) {
      for (std::size_t j = 0; j < 8; ++j) out[i + j] = sigmoid_scalar(x[i + j]);
      continue;
    }
    const __m256 neg = _mm256_xor_ps(vx, sign);  // exp(-x)
    const __m256d elo = exp_lanes(_mm256_cvtps_pd(_mm256_castps256_ps128(neg)));
    const __m256d ehi = exp_lanes(_mm256_cvtps_pd(_mm256_extractf128_ps(neg, 1)));
    // vcvtsd2ss per lane: round the double pipeline back to float exactly
    // where scalar expf does, then finish with float add and divide.
    const __m256 e =
        _mm256_set_m128(_mm256_cvtpd_ps(ehi), _mm256_cvtpd_ps(elo));
    _mm256_storeu_ps(out + i, _mm256_div_ps(one, _mm256_add_ps(one, e)));
  }
  for (; i < n; ++i) out[i] = sigmoid_scalar(x[i]);
}

#endif  // x86

using SigmoidManyFn = void (*)(const float*, float*, std::size_t);

SigmoidManyFn pick_sigmoid_many() {
#if defined(__x86_64__) || defined(__i386__)
  // Same predicate glibc's ifunc resolver uses to select the FMA expf —
  // the build whose bit patterns exp_lanes reproduces. Anywhere it does
  // not hold, stay on the scalar loop (which IS libm, so always matches).
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return sigmoid_many_fma;
#endif
  return sigmoid_many_base;
}

const SigmoidManyFn g_sigmoid_many = pick_sigmoid_many();

}  // namespace

void sigmoid_many(const float* x, float* out, std::size_t n) {
  g_sigmoid_many(x, out, n);
}

}  // namespace xsec::dl
