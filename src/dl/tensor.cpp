#include "dl/tensor.hpp"

#include <cmath>

namespace xsec::dl {

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

void Matrix::fill(float value) {
  for (float& v : data_) v = value;
}

void Matrix::xavier_init(Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  float s = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : data_)
    v = static_cast<float>(rng.uniform(-s, s));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

namespace {

// Raw-pointer matmul kernel bodies. Each output element accumulates its
// products over k in ascending order with a separate rounding per step, so
// every kernel below — and the AVX2 variants, which only widen how many
// *independent* column chains run per instruction — produces bit-identical
// results. The AVX2 wrappers enable avx2 but NOT fma, so the compiler
// cannot contract mul+add pairs into differently-rounded FMAs.

// Zero-skip kernel: row-outer so each skipped a-element skips a whole row
// of b. Wins on sparse inputs (one-hot encoder rows) where most of b is
// never touched.
__attribute__((always_inline)) inline void sparse_body(const float* a, std::size_t rows, std::size_t inner,
                        const float* b, std::size_t cols, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* arow = a + r * inner;
    float* orow = out + r * cols;
    for (std::size_t c = 0; c < cols; ++c) orow[c] = 0.0f;
    for (std::size_t k = 0; k < inner; ++k) {
      float av = arow[k];
      if (av == 0.0f) continue;  // one-hot inputs are mostly zero
      const float* brow = b + k * cols;
      for (std::size_t c = 0; c < cols; ++c) orow[c] += av * brow[c];
    }
  }
}

// Register-blocked dense kernel, column-tile OUTER and row INNER: the b
// tile (inner × tile floats, ~28-56KB for this repo's layer shapes) stays
// hot in L1 across every row of a, so batched scoring amortizes the weight
// traffic that dominates single-row matmuls. KBig accumulators per tile
// give the FP units enough independent add chains to hide vaddps latency;
// narrower trailing tiles (32/8/scalar) cover the remaining columns.
template <int KBig>
__attribute__((always_inline)) inline void dense_body(const float* a, std::size_t rows, std::size_t inner,
                       const float* b, std::size_t cols, float* out) {
  std::size_t c0 = 0;
  for (; c0 + KBig <= cols; c0 += KBig) {
    for (std::size_t r = 0; r < rows; ++r) {
      const float* arow = a + r * inner;
      float acc[KBig] = {};
      const float* bp = b + c0;
      for (std::size_t k = 0; k < inner; ++k, bp += cols) {
        const float av = arow[k];
        for (int j = 0; j < KBig; ++j) acc[j] += av * bp[j];
      }
      float* orow = out + r * cols;
      for (int j = 0; j < KBig; ++j) orow[c0 + j] = acc[j];
    }
  }
  if constexpr (KBig > 32) {
    for (; c0 + 32 <= cols; c0 += 32) {
      for (std::size_t r = 0; r < rows; ++r) {
        const float* arow = a + r * inner;
        float acc[32] = {};
        const float* bp = b + c0;
        for (std::size_t k = 0; k < inner; ++k, bp += cols) {
          const float av = arow[k];
          for (int j = 0; j < 32; ++j) acc[j] += av * bp[j];
        }
        float* orow = out + r * cols;
        for (int j = 0; j < 32; ++j) orow[c0 + j] = acc[j];
      }
    }
  }
  for (; c0 + 8 <= cols; c0 += 8) {
    for (std::size_t r = 0; r < rows; ++r) {
      const float* arow = a + r * inner;
      float acc[8] = {};
      const float* bp = b + c0;
      for (std::size_t k = 0; k < inner; ++k, bp += cols) {
        const float av = arow[k];
        for (int j = 0; j < 8; ++j) acc[j] += av * bp[j];
      }
      float* orow = out + r * cols;
      for (int j = 0; j < 8; ++j) orow[c0 + j] = acc[j];
    }
  }
  for (; c0 < cols; ++c0) {
    for (std::size_t r = 0; r < rows; ++r) {
      const float* arow = a + r * inner;
      float acc = 0.0f;
      const float* bp = b + c0;
      for (std::size_t k = 0; k < inner; ++k, bp += cols) acc += arow[k] * bp[0];
      out[r * cols + c0] = acc;
    }
  }
}

using MatmulKernelFn = void (*)(const float*, std::size_t, std::size_t,
                                const float*, std::size_t, float*);

// Baseline (portable) instantiations. SSE2 has 16 xmm registers; a 64-wide
// tile would spill, so the baseline uses 32 (8 xmm accumulator chains).
void kernel_dense_base(const float* a, std::size_t rows, std::size_t inner,
                       const float* b, std::size_t cols, float* out) {
  dense_body<32>(a, rows, inner, b, cols, out);
}
void kernel_sparse_base(const float* a, std::size_t rows, std::size_t inner,
                        const float* b, std::size_t cols, float* out) {
  sparse_body(a, rows, inner, b, cols, out);
}

#if defined(__x86_64__) || defined(__i386__)
// AVX2 variants, picked at load time when the host supports them. The
// bodies inline into these wrappers and get compiled at the wider ISA: the
// 64-wide tile becomes 8 independent ymm accumulator chains — enough to
// saturate both FP ports — and the zero-skip column loop runs 8-wide.
__attribute__((target("avx2"))) void kernel_dense_avx2(
    const float* a, std::size_t rows, std::size_t inner, const float* b,
    std::size_t cols, float* out) {
  dense_body<64>(a, rows, inner, b, cols, out);
}
__attribute__((target("avx2"))) void kernel_sparse_avx2(
    const float* a, std::size_t rows, std::size_t inner, const float* b,
    std::size_t cols, float* out) {
  sparse_body(a, rows, inner, b, cols, out);
}

MatmulKernelFn pick_dense_kernel() {
  return __builtin_cpu_supports("avx2") ? kernel_dense_avx2
                                        : kernel_dense_base;
}
MatmulKernelFn pick_sparse_kernel() {
  return __builtin_cpu_supports("avx2") ? kernel_sparse_avx2
                                        : kernel_sparse_base;
}
#else
MatmulKernelFn pick_dense_kernel() { return kernel_dense_base; }
MatmulKernelFn pick_sparse_kernel() { return kernel_sparse_base; }
#endif

const MatmulKernelFn g_dense_kernel = pick_dense_kernel();
const MatmulKernelFn g_sparse_kernel = pick_sparse_kernel();

float density_prefix(const Matrix& a, std::size_t rows) {
  const std::size_t n = rows * a.cols();
  if (n == 0) return 1.0f;
  std::size_t nonzero = 0;
  const float* p = a.data().data();
  for (std::size_t i = 0; i < n; ++i) nonzero += (p[i] != 0.0f);
  return static_cast<float>(nonzero) / static_cast<float>(n);
}

}  // namespace

float density(const Matrix& a) { return density_prefix(a, a.rows()); }

void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (density(a) >= kDenseDispatchDensity)
    matmul_dense_into(a, b, out);
  else
    matmul_sparse_into(a, b, out);
}

void matmul_prefix_into(const Matrix& a, std::size_t a_rows, const Matrix& b,
                        Matrix& out) {
  assert(a_rows <= a.rows());
  assert(a.cols() == b.rows());
  assert(&out != &a && &out != &b);
  out.resize(a_rows, b.cols());
  if (density_prefix(a, a_rows) >= kDenseDispatchDensity)
    g_dense_kernel(a.data().data(), a_rows, a.cols(), b.data().data(),
                   b.cols(), out.data().data());
  else
    g_sparse_kernel(a.data().data(), a_rows, a.cols(), b.data().data(),
                    b.cols(), out.data().data());
}

void matmul_sparse_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(&out != &a && &out != &b);
  out.resize(a.rows(), b.cols());
  g_sparse_kernel(a.data().data(), a.rows(), a.cols(), b.data().data(),
                  b.cols(), out.data().data());
}

void matmul_dense_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(&out != &a && &out != &b);
  out.resize(a.rows(), b.cols());
  g_dense_kernel(a.data().data(), a.rows(), a.cols(), b.data().data(),
                 b.cols(), out.data().data());
}

void matmul_bt_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  assert(&out != &a && &out != &b);
  out.resize(a.rows(), b.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (std::size_t c = 0; c < b.rows(); ++c) {
      const float* brow = b.row(c);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[c] = acc;
    }
  }
}

void matmul_at_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  assert(&out != &a && &out != &b);
  out.resize(a.cols(), b.cols());
  out.fill(0.0f);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t r = 0; r < a.cols(); ++r) {
      float av = arow[r];
      if (av == 0.0f) continue;
      float* orow = out.row(r);
      for (std::size_t c = 0; c < b.cols(); ++c) orow[c] += av * brow[c];
    }
  }
}

void add_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b));
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = a.data()[i] + b.data()[i];
}

void sub_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b));
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = a.data()[i] - b.data()[i];
}

void hadamard_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.same_shape(b));
  out.resize(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = a.data()[i] * b.data()[i];
}

void add_row_vector_into(const Matrix& a, const Matrix& row, Matrix& out) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  out.resize(a.rows(), a.cols());
  const float* rv = row.row(0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] + rv[c];
  }
}

void sum_rows_into(const Matrix& a, Matrix& out) {
  out.resize(1, a.cols());
  out.fill(0.0f);
  float* orow = out.row(0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] += arow[c];
  }
}

void add_inplace(Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void add_row_vector_inplace(Matrix& a, const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  const float* rv = row.row(0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* arow = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) arow[c] += rv[c];
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul_into(a, b, out);
  return out;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul_bt_into(a, b, out);
  return out;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul_at_into(a, b, out);
  return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix out;
  add_into(a, b, out);
  return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix out;
  sub_into(a, b, out);
  return out;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix out;
  hadamard_into(a, b, out);
  return out;
}

Matrix add_row_vector(const Matrix& a, const Matrix& row) {
  Matrix out;
  add_row_vector_into(a, row, out);
  return out;
}

Matrix sum_rows(const Matrix& a) {
  Matrix out;
  sum_rows_into(a, out);
  return out;
}

void scale_inplace(Matrix& a, float k) {
  for (float& v : a.data()) v *= k;
}

void add_scaled_inplace(Matrix& a, const Matrix& b, float k) {
  assert(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += k * b.data()[i];
}

}  // namespace xsec::dl
