#include "dl/tensor.hpp"

#include <cmath>

namespace xsec::dl {

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

void Matrix::fill(float value) {
  for (float& v : data_) v = value;
}

void Matrix::xavier_init(Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  float s = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : data_)
    v = static_cast<float>(rng.uniform(-s, s));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float av = arow[k];
      if (av == 0.0f) continue;  // one-hot inputs are mostly zero
      const float* brow = b.row(k);
      for (std::size_t c = 0; c < b.cols(); ++c) orow[c] += av * brow[c];
    }
  }
  return out;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (std::size_t c = 0; c < b.rows(); ++c) {
      const float* brow = b.row(c);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      out.at(r, c) = acc;
    }
  }
  return out;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t r = 0; r < a.cols(); ++r) {
      float av = arow[r];
      if (av == 0.0f) continue;
      float* orow = out.row(r);
      for (std::size_t c = 0; c < b.cols(); ++c) orow[c] += av * brow[c];
    }
  }
  return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] += b.data()[i];
  return out;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] -= b.data()[i];
  return out;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= b.data()[i];
  return out;
}

Matrix add_row_vector(const Matrix& a, const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  Matrix out = a;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out.at(r, c) += row.at(0, c);
  return out;
}

Matrix sum_rows(const Matrix& a) {
  Matrix out(1, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out.at(0, c) += a.at(r, c);
  return out;
}

void scale_inplace(Matrix& a, float k) {
  for (float& v : a.data()) v *= k;
}

void add_scaled_inplace(Matrix& a, const Matrix& b, float k) {
  assert(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += k * b.data()[i];
}

}  // namespace xsec::dl
