// Model weight serialization.
//
// In the paper's deployment the SMO trains models offline and pushes them
// into the MobiWatch xApp; this module is that transfer format: a versioned
// byte blob of every parameter matrix, loadable into an identically
// configured model.
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "dl/layers.hpp"

namespace xsec::dl {

/// Serializes the parameter matrices (shapes + f32 data) in order.
Bytes save_params(const std::vector<Param>& params);
/// Restores into `params`; shapes must match exactly.
Status load_params(const std::vector<Param>& params, const Bytes& blob);

Status save_params_file(const std::vector<Param>& params,
                        const std::string& path);
Status load_params_file(const std::vector<Param>& params,
                        const std::string& path);

}  // namespace xsec::dl
