// LSTM next-step predictor for sequence modelling (paper §3.2).
//
// Trained on benign windows to predict the next telemetry vector,
// x̂_{i+N} = f_LSTM(x_i ... x_{i+N-1}); the anomaly score of a window is the
// mean squared deviation between the prediction and the telemetry that
// actually followed. Implemented as a single LSTM layer with full
// backpropagation through time plus a sigmoid-activated output projection.
//
// Two forward paths share the same math bit-for-bit:
//   - forward_steps(): the training path, materializing per-gate matrices
//     for BPTT;
//   - step_fused()/window_errors(): the inference path, which computes the
//     gate pre-activations into one reusable B×4H workspace buffer and
//     applies all four gate activations plus the c/h update in a single
//     pass over it — no gate slicing, no per-step temporaries, and zero
//     heap allocation once the workspace is warmed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dl/layers.hpp"
#include "dl/optim.hpp"

namespace xsec::dl {

struct LstmConfig {
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 64;
  std::uint64_t seed = 5678;
  /// Sigmoid output suits raw one-hot targets; standardized targets need a
  /// linear output projection.
  bool sigmoid_output = true;
};

struct LstmTrainConfig {
  int epochs = 40;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  bool shuffle = true;
  std::function<void(int, double)> on_epoch;
};

/// One training/evaluation sample: a window of N input vectors and the
/// vector that followed it.
struct SequenceSample {
  std::vector<std::vector<float>> window;  // N × D
  std::vector<float> target;               // D
};

class LstmPredictor {
 public:
  /// Preallocated buffers for the fused inference path. Matrices only grow
  /// (capacity is retained when a later batch is smaller), so once warmed
  /// at the largest batch a workspace performs no heap allocation.
  struct Workspace {
    Matrix h, c;  // B×H running state
    Matrix z;     // B×4H fused gate pre-activations [i | f | g | o]
    Matrix hh;    // B×4H scratch for h·Wh, kept separate so the
                  // x·Wx + h·Wh add matches the reference FP order
    Matrix y;     // B×D output projection
    Matrix zx;    // (B+T-1)×4H shared x·Wx rows (strided batch path)
    Matrix gates;  // 5×H per-row scratch for the batched gate activations
  };

  explicit LstmPredictor(LstmConfig config);

  double fit(const std::vector<SequenceSample>& samples,
             const LstmTrainConfig& train);

  /// Per-sample mean squared prediction error of the FINAL step (the
  /// paper's formulation: x̂_{i+N} vs x_{i+N}).
  std::vector<double> prediction_errors(
      const std::vector<SequenceSample>& samples);
  double prediction_error(const SequenceSample& sample);
  /// Per-sample WORST per-step prediction error: at every step t the model
  /// predicts the next record and is compared to what actually followed
  /// (DeepLog-style). Catches an anomalous record anywhere in the window,
  /// not only at the target position.
  std::vector<double> max_step_errors(
      const std::vector<SequenceSample>& samples);
  /// Predicted next vector for one window (N × D rows).
  std::vector<float> predict(const std::vector<std::vector<float>>& window);

  /// Batched per-window errors over pre-assembled step matrices: steps[t]
  /// is B×D (row w = step t of window w), targets is B×D. Writes one error
  /// per window into errors[0..B): the worst per-step next-record error
  /// when `max_step`, else the final-step error. Allocation-free given a
  /// warmed workspace; bit-identical to the training-path forward.
  void window_errors(const std::vector<Matrix>& steps, const Matrix& targets,
                     Workspace& ws, bool max_step, double* errors) const;
  /// Batched per-window errors over OVERLAPPING sliding windows sharing one
  /// row block: xs holds n_windows + n_steps contiguous (already scaled)
  /// rows, window w's step t is row w+t and its target is row w+t+1. Each
  /// distinct row feeds Wx exactly once — an n_steps-fold cut of the
  /// input-side matmul versus per-window step matrices — and each step's
  /// pre-activations are gathered as one contiguous row range. Bit-identical
  /// to window_errors on equivalently assembled step/target matrices.
  void window_errors_strided(const Matrix& xs, std::size_t n_windows,
                             std::size_t n_steps, Workspace& ws,
                             bool max_step, double* errors) const;
  /// One fused cell step: consumes x (B×D), updates ws.h / ws.c in place.
  /// ws.h and ws.c must be B×H (zeroed before the first step).
  void step_fused(const Matrix& x, Workspace& ws) const;
  /// Output head y = sigmoid?(h·Wo + bo) into a caller-owned buffer.
  void project_into(const Matrix& h, Matrix& y) const;

  const LstmConfig& config() const { return config_; }
  std::vector<Param> params();

 private:
  /// The fused half of a cell step: ws.z already holds x·Wx + h·Wh + b;
  /// applies all four gate activations and the c/h update in one pass.
  void gate_pass(Workspace& ws) const;

  /// Per-timestep BPTT cache. The input matrix is NOT copied here — the
  /// backward pass reads it from the caller's step vector by index.
  struct StepCache {
    Matrix h_prev, c_prev;
    Matrix i, f, g, o, tanh_c;
  };

  /// Forward over a batch: steps[t] is B × D. Returns final hidden (B × H)
  /// and fills `caches` when training. When `hidden_states` is non-null it
  /// receives h_t for every step.
  Matrix forward_steps(const std::vector<Matrix>& steps,
                       std::vector<StepCache>* caches,
                       std::vector<Matrix>* hidden_states = nullptr);
  /// BPTT given the gradient flowing into each step's hidden state from
  /// the per-step output heads; accumulates parameter gradients. `steps`
  /// must be the same vector the forward pass consumed.
  void backward_steps(const std::vector<Matrix>& steps,
                      const std::vector<StepCache>& caches,
                      const std::vector<Matrix>& grad_h_per_step);
  Matrix output_forward(const Matrix& h);  // caches for backward
  Matrix output_backward(const Matrix& grad_y);
  /// Output head without caching (evaluation paths).
  Matrix project(const Matrix& h) const;

  LstmConfig config_;
  Rng rng_;
  // Gate weights, gate order [i | f | g | o] along the column axis.
  Matrix wx_, wh_, b_;                    // D×4H, H×4H, 1×4H
  Matrix grad_wx_, grad_wh_, grad_b_;
  // Output projection H -> D with sigmoid.
  Matrix wo_, bo_;
  Matrix grad_wo_, grad_bo_;
  Matrix cached_h_, cached_y_;  // output-layer caches
};

}  // namespace xsec::dl
