// LSTM next-step predictor for sequence modelling (paper §3.2).
//
// Trained on benign windows to predict the next telemetry vector,
// x̂_{i+N} = f_LSTM(x_i ... x_{i+N-1}); the anomaly score of a window is the
// mean squared deviation between the prediction and the telemetry that
// actually followed. Implemented as a single LSTM layer with full
// backpropagation through time plus a sigmoid-activated output projection.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dl/layers.hpp"
#include "dl/optim.hpp"

namespace xsec::dl {

struct LstmConfig {
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 64;
  std::uint64_t seed = 5678;
  /// Sigmoid output suits raw one-hot targets; standardized targets need a
  /// linear output projection.
  bool sigmoid_output = true;
};

struct LstmTrainConfig {
  int epochs = 40;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  bool shuffle = true;
  std::function<void(int, double)> on_epoch;
};

/// One training/evaluation sample: a window of N input vectors and the
/// vector that followed it.
struct SequenceSample {
  std::vector<std::vector<float>> window;  // N × D
  std::vector<float> target;               // D
};

class LstmPredictor {
 public:
  explicit LstmPredictor(LstmConfig config);

  double fit(const std::vector<SequenceSample>& samples,
             const LstmTrainConfig& train);

  /// Per-sample mean squared prediction error of the FINAL step (the
  /// paper's formulation: x̂_{i+N} vs x_{i+N}).
  std::vector<double> prediction_errors(
      const std::vector<SequenceSample>& samples);
  double prediction_error(const SequenceSample& sample);
  /// Per-sample WORST per-step prediction error: at every step t the model
  /// predicts the next record and is compared to what actually followed
  /// (DeepLog-style). Catches an anomalous record anywhere in the window,
  /// not only at the target position.
  std::vector<double> max_step_errors(
      const std::vector<SequenceSample>& samples);
  /// Predicted next vector for one window (N × D rows).
  std::vector<float> predict(const std::vector<std::vector<float>>& window);

  const LstmConfig& config() const { return config_; }
  std::vector<Param> params();

 private:
  struct StepCache {
    Matrix x, h_prev, c_prev;
    Matrix i, f, g, o, c, tanh_c;
  };

  /// Forward over a batch: steps[t] is B × D. Returns final hidden (B × H)
  /// and fills `caches` when training. When `hidden_states` is non-null it
  /// receives h_t for every step.
  Matrix forward_steps(const std::vector<Matrix>& steps,
                       std::vector<StepCache>* caches,
                       std::vector<Matrix>* hidden_states = nullptr);
  /// BPTT given the gradient flowing into each step's hidden state from
  /// the per-step output heads; accumulates parameter gradients.
  void backward_steps(const std::vector<StepCache>& caches,
                      const std::vector<Matrix>& grad_h_per_step);
  Matrix output_forward(const Matrix& h);  // caches for backward
  Matrix output_backward(const Matrix& grad_y);
  /// Output head without caching (evaluation paths).
  Matrix project(const Matrix& h) const;

  LstmConfig config_;
  Rng rng_;
  // Gate weights, gate order [i | f | g | o] along the column axis.
  Matrix wx_, wh_, b_;                    // D×4H, H×4H, 1×4H
  Matrix grad_wx_, grad_wh_, grad_b_;
  // Output projection H -> D with sigmoid.
  Matrix wo_, bo_;
  Matrix grad_wo_, grad_bo_;
  Matrix cached_h_, cached_y_;  // output-layer caches
};

}  // namespace xsec::dl
