#include "dl/autoencoder.hpp"

#include <cassert>

namespace xsec::dl {

Autoencoder::Autoencoder(AutoencoderConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  assert(config_.input_dim > 0);
  assert(!config_.hidden.empty());

  // Encoder: input -> h1 -> ... -> bottleneck, ReLU between layers.
  std::size_t prev = config_.input_dim;
  for (std::size_t width : config_.hidden) {
    network_.add(std::make_unique<Linear>(prev, width, rng_));
    network_.add(std::make_unique<Relu>());
    prev = width;
  }
  // Decoder: mirror of the encoder; sigmoid output since inputs are
  // one-hot indicators in [0, 1].
  for (std::size_t i = config_.hidden.size(); i-- > 1;) {
    network_.add(std::make_unique<Linear>(prev, config_.hidden[i - 1], rng_));
    network_.add(std::make_unique<Relu>());
    prev = config_.hidden[i - 1];
  }
  network_.add(std::make_unique<Linear>(prev, config_.input_dim, rng_));
  if (config_.sigmoid_output) network_.add(std::make_unique<Sigmoid>());
}

double Autoencoder::fit(const Matrix& data, const TrainConfig& train) {
  assert(data.cols() == config_.input_dim);
  Adam optimizer(network_.params(), train.learning_rate);

  std::vector<std::size_t> order(data.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double mean_loss = 0.0;
  for (int epoch = 0; epoch < train.epochs; ++epoch) {
    if (train.shuffle) rng_.shuffle(order.begin(), order.end());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += train.batch_size) {
      std::size_t end = std::min(start + train.batch_size, order.size());
      Matrix batch(end - start, config_.input_dim);
      for (std::size_t i = start; i < end; ++i)
        for (std::size_t c = 0; c < config_.input_dim; ++c)
          batch.at(i - start, c) = data.at(order[i], c);

      optimizer.zero_grad();
      Matrix output = network_.forward(batch);
      // MSE loss: L = mean((y - x)^2); dL/dy = 2 (y - x) / n_elems.
      Matrix diff = sub(output, batch);
      double loss = 0.0;
      for (float d : diff.data()) loss += static_cast<double>(d) * d;
      loss /= static_cast<double>(diff.size());
      Matrix grad = diff;
      scale_inplace(grad, 2.0f / static_cast<float>(diff.size()));
      network_.backward(grad);
      optimizer.step();

      epoch_loss += loss;
      ++batches;
    }
    mean_loss = batches ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (train.on_epoch) train.on_epoch(epoch, mean_loss);
  }
  return mean_loss;
}

Matrix Autoencoder::reconstruct(const Matrix& data) {
  return network_.forward(data);
}

std::vector<double> Autoencoder::reconstruction_errors(const Matrix& data) {
  std::vector<double> errors(data.rows());
  reconstruction_errors_into(data, errors.data());
  return errors;
}

void Autoencoder::reconstruction_errors_into(const Matrix& data,
                                             double* errors) {
  const Matrix& output = network_.infer(data);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < data.cols(); ++c) {
      double d = static_cast<double>(output.at(r, c)) - data.at(r, c);
      acc += d * d;
    }
    errors[r] = acc / static_cast<double>(data.cols());
  }
}

double Autoencoder::reconstruction_error(const std::vector<float>& sample) {
  Matrix m(1, sample.size());
  for (std::size_t c = 0; c < sample.size(); ++c) m.at(0, c) = sample[c];
  return reconstruction_errors(m)[0];
}

}  // namespace xsec::dl
