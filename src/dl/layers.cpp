#include "dl/layers.hpp"

#include <cmath>

namespace xsec::dl {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weight_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  weight_.xavier_init(rng, in_dim, out_dim);
}

Matrix Linear::forward(const Matrix& x) {
  cached_input_ = x;
  return add_row_vector(matmul(x, weight_), bias_);
}

void Linear::infer_into(const Matrix& x, Matrix& out) {
  matmul_into(x, weight_, out);
  add_row_vector_inplace(out, bias_);
}

Matrix Linear::backward(const Matrix& grad_out) {
  // dW += x^T * g ; db += sum_rows(g) ; dx = g * W^T
  Matrix dw = matmul_at(cached_input_, grad_out);
  add_scaled_inplace(grad_weight_, dw, 1.0f);
  Matrix db = sum_rows(grad_out);
  add_scaled_inplace(grad_bias_, db, 1.0f);
  return matmul_bt(grad_out, weight_);
}

std::vector<Param> Linear::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

void Linear::zero_grad() {
  grad_weight_.zero();
  grad_bias_.zero();
}

Matrix Relu::forward(const Matrix& x) {
  cached_input_ = x;
  Matrix out = x;
  for (float& v : out.data())
    if (v < 0.0f) v = 0.0f;
  return out;
}

void Relu::infer_into(const Matrix& x, Matrix& out) { relu_into(x, out); }

Matrix Relu::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (cached_input_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  return grad;
}

float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

Matrix sigmoid_mat(const Matrix& x) {
  Matrix out = x;
  sigmoid_inplace(out);
  return out;
}

Matrix tanh_mat(const Matrix& x) {
  Matrix out = x;
  tanh_inplace(out);
  return out;
}

void sigmoid_into(const Matrix& x, Matrix& out) {
  out.resize(x.rows(), x.cols());
  sigmoid_many(x.data().data(), out.data().data(), x.size());
}

void tanh_into(const Matrix& x, Matrix& out) {
  out.resize(x.rows(), x.cols());
  tanh_many(x.data().data(), out.data().data(), x.size());
}

void sigmoid_inplace(Matrix& x) {
  sigmoid_many(x.data().data(), x.data().data(), x.size());
}

void tanh_inplace(Matrix& x) {
  tanh_many(x.data().data(), x.data().data(), x.size());
}

void relu_into(const Matrix& x, Matrix& out) {
  out.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    float v = x.data()[i];
    out.data()[i] = v < 0.0f ? 0.0f : v;
  }
}

Matrix Sigmoid::forward(const Matrix& x) {
  cached_output_ = sigmoid_mat(x);
  return cached_output_;
}

void Sigmoid::infer_into(const Matrix& x, Matrix& out) {
  sigmoid_into(x, out);
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    float y = cached_output_.data()[i];
    grad.data()[i] *= y * (1.0f - y);
  }
  return grad;
}

Matrix Tanh::forward(const Matrix& x) {
  cached_output_ = tanh_mat(x);
  return cached_output_;
}

void Tanh::infer_into(const Matrix& x, Matrix& out) { tanh_into(x, out); }

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    float y = cached_output_.data()[i];
    grad.data()[i] *= 1.0f - y * y;
  }
  return grad;
}

Matrix Sequential::forward(const Matrix& x) {
  Matrix current = x;
  for (auto& layer : layers_) current = layer->forward(current);
  return current;
}

const Matrix& Sequential::infer(const Matrix& x) {
  const Matrix* current = &x;
  std::size_t which = 0;
  for (auto& layer : layers_) {
    // Ping-pong: a layer never writes the buffer it is reading from.
    layer->infer_into(*current, infer_buffers_[which]);
    current = &infer_buffers_[which];
    which ^= 1;
  }
  return *current;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    grad = (*it)->backward(grad);
  return grad;
}

std::vector<Param> Sequential::params() {
  if (params_dirty_) {
    params_cache_.clear();
    std::size_t total = 0;
    for (auto& layer : layers_) total += layer->params().size();
    params_cache_.reserve(total);
    for (auto& layer : layers_)
      for (const Param& p : layer->params()) params_cache_.push_back(p);
    params_dirty_ = false;
  }
  return params_cache_;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

}  // namespace xsec::dl
