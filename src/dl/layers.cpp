#include "dl/layers.hpp"

#include <cmath>

namespace xsec::dl {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_(in_dim, out_dim),
      bias_(1, out_dim),
      grad_weight_(in_dim, out_dim),
      grad_bias_(1, out_dim) {
  weight_.xavier_init(rng, in_dim, out_dim);
}

Matrix Linear::forward(const Matrix& x) {
  cached_input_ = x;
  return add_row_vector(matmul(x, weight_), bias_);
}

Matrix Linear::backward(const Matrix& grad_out) {
  // dW += x^T * g ; db += sum_rows(g) ; dx = g * W^T
  Matrix dw = matmul_at(cached_input_, grad_out);
  add_scaled_inplace(grad_weight_, dw, 1.0f);
  Matrix db = sum_rows(grad_out);
  add_scaled_inplace(grad_bias_, db, 1.0f);
  return matmul_bt(grad_out, weight_);
}

std::vector<Param> Linear::params() {
  return {{&weight_, &grad_weight_}, {&bias_, &grad_bias_}};
}

void Linear::zero_grad() {
  grad_weight_.zero();
  grad_bias_.zero();
}

Matrix Relu::forward(const Matrix& x) {
  cached_input_ = x;
  Matrix out = x;
  for (float& v : out.data())
    if (v < 0.0f) v = 0.0f;
  return out;
}

Matrix Relu::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (cached_input_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  return grad;
}

float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

Matrix sigmoid_mat(const Matrix& x) {
  Matrix out = x;
  for (float& v : out.data()) v = sigmoid_scalar(v);
  return out;
}

Matrix tanh_mat(const Matrix& x) {
  Matrix out = x;
  for (float& v : out.data()) v = std::tanh(v);
  return out;
}

Matrix Sigmoid::forward(const Matrix& x) {
  cached_output_ = sigmoid_mat(x);
  return cached_output_;
}

Matrix Sigmoid::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    float y = cached_output_.data()[i];
    grad.data()[i] *= y * (1.0f - y);
  }
  return grad;
}

Matrix Tanh::forward(const Matrix& x) {
  cached_output_ = tanh_mat(x);
  return cached_output_;
}

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    float y = cached_output_.data()[i];
    grad.data()[i] *= 1.0f - y * y;
  }
  return grad;
}

Matrix Sequential::forward(const Matrix& x) {
  Matrix current = x;
  for (auto& layer : layers_) current = layer->forward(current);
  return current;
}

Matrix Sequential::backward(const Matrix& grad_out) {
  Matrix grad = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    grad = (*it)->backward(grad);
  return grad;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (auto& layer : layers_)
    for (const Param& p : layer->params()) all.push_back(p);
  return all;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

}  // namespace xsec::dl
