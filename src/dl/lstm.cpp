#include "dl/lstm.hpp"

#include <cassert>
#include <cmath>

namespace xsec::dl {

namespace {
/// Extracts gate `g` (0..3) from a B × 4H pre-activation matrix.
Matrix slice_gate(const Matrix& z, std::size_t gate, std::size_t hidden) {
  Matrix out(z.rows(), hidden);
  for (std::size_t r = 0; r < z.rows(); ++r)
    for (std::size_t c = 0; c < hidden; ++c)
      out.at(r, c) = z.at(r, gate * hidden + c);
  return out;
}

void write_gate(Matrix& z, std::size_t gate, std::size_t hidden,
                const Matrix& values) {
  for (std::size_t r = 0; r < z.rows(); ++r)
    for (std::size_t c = 0; c < hidden; ++c)
      z.at(r, gate * hidden + c) = values.at(r, c);
}
}  // namespace

LstmPredictor::LstmPredictor(LstmConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.input_dim > 0);
  const std::size_t d = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  wx_ = Matrix(d, 4 * h);
  wh_ = Matrix(h, 4 * h);
  b_ = Matrix(1, 4 * h);
  wx_.xavier_init(rng_, d, h);
  wh_.xavier_init(rng_, h, h);
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t c = 0; c < h; ++c) b_.at(0, h + c) = 1.0f;
  grad_wx_ = Matrix(d, 4 * h);
  grad_wh_ = Matrix(h, 4 * h);
  grad_b_ = Matrix(1, 4 * h);
  wo_ = Matrix(h, d);
  bo_ = Matrix(1, d);
  wo_.xavier_init(rng_, h, d);
  grad_wo_ = Matrix(h, d);
  grad_bo_ = Matrix(1, d);
}

std::vector<Param> LstmPredictor::params() {
  return {{&wx_, &grad_wx_}, {&wh_, &grad_wh_}, {&b_, &grad_b_},
          {&wo_, &grad_wo_}, {&bo_, &grad_bo_}};
}

Matrix LstmPredictor::forward_steps(const std::vector<Matrix>& steps,
                                    std::vector<StepCache>* caches,
                                    std::vector<Matrix>* hidden_states) {
  const std::size_t h = config_.hidden_dim;
  const std::size_t batch = steps.empty() ? 0 : steps[0].rows();
  Matrix h_t(batch, h);
  Matrix c_t(batch, h);
  if (caches) caches->clear();
  if (hidden_states) hidden_states->clear();

  for (const Matrix& x : steps) {
    Matrix z = add_row_vector(add(matmul(x, wx_), matmul(h_t, wh_)), b_);
    Matrix i = sigmoid_mat(slice_gate(z, 0, h));
    Matrix f = sigmoid_mat(slice_gate(z, 1, h));
    Matrix g = tanh_mat(slice_gate(z, 2, h));
    Matrix o = sigmoid_mat(slice_gate(z, 3, h));
    Matrix c_next = add(hadamard(f, c_t), hadamard(i, g));
    Matrix tanh_c = tanh_mat(c_next);
    Matrix h_next = hadamard(o, tanh_c);

    if (caches) {
      StepCache cache;
      cache.x = x;
      cache.h_prev = h_t;
      cache.c_prev = c_t;
      cache.i = i;
      cache.f = f;
      cache.g = g;
      cache.o = o;
      cache.c = c_next;
      cache.tanh_c = tanh_c;
      caches->push_back(std::move(cache));
    }
    h_t = std::move(h_next);
    c_t = std::move(c_next);
    if (hidden_states) hidden_states->push_back(h_t);
  }
  return h_t;
}

void LstmPredictor::backward_steps(
    const std::vector<StepCache>& caches,
    const std::vector<Matrix>& grad_h_per_step) {
  assert(grad_h_per_step.size() == caches.size());
  const std::size_t h = config_.hidden_dim;
  const std::size_t batch = caches.empty() ? 0 : caches[0].x.rows();
  Matrix dh(batch, h);
  Matrix dc(batch, h);

  for (std::size_t t = caches.size(); t-- > 0;) {
    const StepCache& s = caches[t];
    dh = add(dh, grad_h_per_step[t]);
    // h = o ∘ tanh(c)
    Matrix do_ = hadamard(dh, s.tanh_c);
    Matrix dtanh_c = hadamard(dh, s.o);
    // dc += dtanh_c * (1 - tanh(c)^2)
    Matrix dc_from_h = dtanh_c;
    for (std::size_t i = 0; i < dc_from_h.size(); ++i) {
      float tc = s.tanh_c.data()[i];
      dc_from_h.data()[i] *= 1.0f - tc * tc;
    }
    Matrix dc_total = add(dc, dc_from_h);

    // c = f ∘ c_prev + i ∘ g
    Matrix df = hadamard(dc_total, s.c_prev);
    Matrix dc_prev = hadamard(dc_total, s.f);
    Matrix di = hadamard(dc_total, s.g);
    Matrix dg = hadamard(dc_total, s.i);

    // Through gate nonlinearities back to pre-activations.
    auto sig_back = [](Matrix& grad, const Matrix& y) {
      for (std::size_t i = 0; i < grad.size(); ++i) {
        float v = y.data()[i];
        grad.data()[i] *= v * (1.0f - v);
      }
    };
    sig_back(di, s.i);
    sig_back(df, s.f);
    sig_back(do_, s.o);
    for (std::size_t i = 0; i < dg.size(); ++i) {
      float v = s.g.data()[i];
      dg.data()[i] *= 1.0f - v * v;
    }

    Matrix dz(dh.rows(), 4 * h);
    write_gate(dz, 0, h, di);
    write_gate(dz, 1, h, df);
    write_gate(dz, 2, h, dg);
    write_gate(dz, 3, h, do_);

    // z = x Wx + h_prev Wh + b
    add_scaled_inplace(grad_wx_, matmul_at(s.x, dz), 1.0f);
    add_scaled_inplace(grad_wh_, matmul_at(s.h_prev, dz), 1.0f);
    add_scaled_inplace(grad_b_, sum_rows(dz), 1.0f);

    dh = matmul_bt(dz, wh_);
    dc = std::move(dc_prev);
  }
}

Matrix LstmPredictor::project(const Matrix& h) const {
  Matrix pre = add_row_vector(matmul(h, wo_), bo_);
  return config_.sigmoid_output ? sigmoid_mat(pre) : pre;
}

Matrix LstmPredictor::output_forward(const Matrix& h) {
  cached_h_ = h;
  Matrix pre = add_row_vector(matmul(h, wo_), bo_);
  cached_y_ = config_.sigmoid_output ? sigmoid_mat(pre) : pre;
  return cached_y_;
}

Matrix LstmPredictor::output_backward(const Matrix& grad_y) {
  Matrix grad_pre = grad_y;
  if (config_.sigmoid_output) {
    for (std::size_t i = 0; i < grad_pre.size(); ++i) {
      float y = cached_y_.data()[i];
      grad_pre.data()[i] *= y * (1.0f - y);
    }
  }
  add_scaled_inplace(grad_wo_, matmul_at(cached_h_, grad_pre), 1.0f);
  add_scaled_inplace(grad_bo_, sum_rows(grad_pre), 1.0f);
  return matmul_bt(grad_pre, wo_);
}

double LstmPredictor::fit(const std::vector<SequenceSample>& samples,
                          const LstmTrainConfig& train) {
  assert(!samples.empty());
  const std::size_t n_steps = samples[0].window.size();
  const std::size_t d = config_.input_dim;
  Adam optimizer(params(), train.learning_rate);

  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double mean_loss = 0.0;
  for (int epoch = 0; epoch < train.epochs; ++epoch) {
    if (train.shuffle) rng_.shuffle(order.begin(), order.end());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += train.batch_size) {
      std::size_t end = std::min(start + train.batch_size, order.size());
      std::size_t batch = end - start;

      std::vector<Matrix> steps(n_steps, Matrix(batch, d));
      Matrix targets(batch, d);
      for (std::size_t i = start; i < end; ++i) {
        const SequenceSample& sample = samples[order[i]];
        assert(sample.window.size() == n_steps);
        for (std::size_t t = 0; t < n_steps; ++t)
          for (std::size_t c = 0; c < d; ++c)
            steps[t].at(i - start, c) = sample.window[t][c];
        for (std::size_t c = 0; c < d; ++c)
          targets.at(i - start, c) = sample.target[c];
      }

      for (const Param& p : params()) p.grad->zero();
      std::vector<StepCache> caches;
      std::vector<Matrix> hs;
      forward_steps(steps, &caches, &hs);

      // Per-step next-record prediction loss: at step t the model predicts
      // steps[t+1] (or the target after the last step).
      double loss = 0.0;
      std::vector<Matrix> grad_h(n_steps);
      for (std::size_t t = 0; t < n_steps; ++t) {
        const Matrix& target_t = (t + 1 < n_steps) ? steps[t + 1] : targets;
        Matrix y = project(hs[t]);
        Matrix diff = sub(y, target_t);
        double step_loss = 0.0;
        for (float v : diff.data())
          step_loss += static_cast<double>(v) * v;
        loss += step_loss / static_cast<double>(diff.size() * n_steps);

        Matrix g = diff;
        scale_inplace(g, 2.0f / static_cast<float>(diff.size() * n_steps));
        if (config_.sigmoid_output) {
          for (std::size_t i = 0; i < g.size(); ++i) {
            float yv = y.data()[i];
            g.data()[i] *= yv * (1.0f - yv);
          }
        }
        add_scaled_inplace(grad_wo_, matmul_at(hs[t], g), 1.0f);
        add_scaled_inplace(grad_bo_, sum_rows(g), 1.0f);
        grad_h[t] = matmul_bt(g, wo_);
      }
      backward_steps(caches, grad_h);
      clip_grad_norm(params(), train.grad_clip);
      optimizer.step();

      epoch_loss += loss;
      ++batches;
    }
    mean_loss = batches ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (train.on_epoch) train.on_epoch(epoch, mean_loss);
  }
  return mean_loss;
}

std::vector<float> LstmPredictor::predict(
    const std::vector<std::vector<float>>& window) {
  const std::size_t d = config_.input_dim;
  std::vector<Matrix> steps;
  steps.reserve(window.size());
  for (const auto& x : window) {
    Matrix m(1, d);
    for (std::size_t c = 0; c < d; ++c) m.at(0, c) = x[c];
    steps.push_back(std::move(m));
  }
  Matrix h = forward_steps(steps, nullptr);
  Matrix y = output_forward(h);
  std::vector<float> out(d);
  for (std::size_t c = 0; c < d; ++c) out[c] = y.at(0, c);
  return out;
}

double LstmPredictor::prediction_error(const SequenceSample& sample) {
  std::vector<float> predicted = predict(sample.window);
  double acc = 0.0;
  for (std::size_t c = 0; c < predicted.size(); ++c) {
    double diff = static_cast<double>(predicted[c]) - sample.target[c];
    acc += diff * diff;
  }
  return acc / static_cast<double>(predicted.size());
}

std::vector<double> LstmPredictor::max_step_errors(
    const std::vector<SequenceSample>& samples) {
  std::vector<double> errors;
  errors.reserve(samples.size());
  if (samples.empty()) return errors;

  const std::size_t n_steps = samples[0].window.size();
  const std::size_t d = config_.input_dim;
  const std::size_t kBatch = 64;
  for (std::size_t start = 0; start < samples.size(); start += kBatch) {
    std::size_t end = std::min(start + kBatch, samples.size());
    std::size_t batch = end - start;
    std::vector<Matrix> steps(n_steps, Matrix(batch, d));
    Matrix targets(batch, d);
    for (std::size_t i = start; i < end; ++i) {
      const SequenceSample& sample = samples[i];
      for (std::size_t t = 0; t < n_steps; ++t)
        for (std::size_t c = 0; c < d; ++c)
          steps[t].at(i - start, c) = sample.window[t][c];
      for (std::size_t c = 0; c < d; ++c)
        targets.at(i - start, c) = sample.target[c];
    }
    std::vector<Matrix> hs;
    forward_steps(steps, nullptr, &hs);
    std::vector<double> worst(batch, 0.0);
    for (std::size_t t = 0; t < n_steps; ++t) {
      const Matrix& target_t = (t + 1 < n_steps) ? steps[t + 1] : targets;
      Matrix y = project(hs[t]);
      for (std::size_t r = 0; r < batch; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
          double diff = static_cast<double>(y.at(r, c)) - target_t.at(r, c);
          acc += diff * diff;
        }
        worst[r] = std::max(worst[r], acc / static_cast<double>(d));
      }
    }
    errors.insert(errors.end(), worst.begin(), worst.end());
  }
  return errors;
}

std::vector<double> LstmPredictor::prediction_errors(
    const std::vector<SequenceSample>& samples) {
  std::vector<double> errors;
  errors.reserve(samples.size());
  if (samples.empty()) return errors;

  // Batched evaluation, same layout as training.
  const std::size_t n_steps = samples[0].window.size();
  const std::size_t d = config_.input_dim;
  const std::size_t kBatch = 64;
  for (std::size_t start = 0; start < samples.size(); start += kBatch) {
    std::size_t end = std::min(start + kBatch, samples.size());
    std::size_t batch = end - start;
    std::vector<Matrix> steps(n_steps, Matrix(batch, d));
    Matrix targets(batch, d);
    for (std::size_t i = start; i < end; ++i) {
      const SequenceSample& sample = samples[i];
      for (std::size_t t = 0; t < n_steps; ++t)
        for (std::size_t c = 0; c < d; ++c)
          steps[t].at(i - start, c) = sample.window[t][c];
      for (std::size_t c = 0; c < d; ++c)
        targets.at(i - start, c) = sample.target[c];
    }
    Matrix h = forward_steps(steps, nullptr);
    Matrix y = output_forward(h);
    for (std::size_t r = 0; r < batch; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        double diff = static_cast<double>(y.at(r, c)) - targets.at(r, c);
        acc += diff * diff;
      }
      errors.push_back(acc / static_cast<double>(d));
    }
  }
  return errors;
}

}  // namespace xsec::dl
