#include "dl/lstm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace xsec::dl {

namespace {
/// Extracts gate `g` (0..3) from a B × 4H pre-activation matrix
/// (training path only — inference uses the fused step).
Matrix slice_gate(const Matrix& z, std::size_t gate, std::size_t hidden) {
  Matrix out(z.rows(), hidden);
  for (std::size_t r = 0; r < z.rows(); ++r)
    for (std::size_t c = 0; c < hidden; ++c)
      out.at(r, c) = z.at(r, gate * hidden + c);
  return out;
}

void write_gate(Matrix& z, std::size_t gate, std::size_t hidden,
                const Matrix& values) {
  for (std::size_t r = 0; r < z.rows(); ++r)
    for (std::size_t c = 0; c < hidden; ++c)
      z.at(r, gate * hidden + c) = values.at(r, c);
}
}  // namespace

LstmPredictor::LstmPredictor(LstmConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.input_dim > 0);
  const std::size_t d = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  wx_ = Matrix(d, 4 * h);
  wh_ = Matrix(h, 4 * h);
  b_ = Matrix(1, 4 * h);
  wx_.xavier_init(rng_, d, h);
  wh_.xavier_init(rng_, h, h);
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t c = 0; c < h; ++c) b_.at(0, h + c) = 1.0f;
  grad_wx_ = Matrix(d, 4 * h);
  grad_wh_ = Matrix(h, 4 * h);
  grad_b_ = Matrix(1, 4 * h);
  wo_ = Matrix(h, d);
  bo_ = Matrix(1, d);
  wo_.xavier_init(rng_, h, d);
  grad_wo_ = Matrix(h, d);
  grad_bo_ = Matrix(1, d);
}

std::vector<Param> LstmPredictor::params() {
  return {{&wx_, &grad_wx_}, {&wh_, &grad_wh_}, {&b_, &grad_b_},
          {&wo_, &grad_wo_}, {&bo_, &grad_bo_}};
}

// ---- Fused inference path ----------------------------------------------

void LstmPredictor::step_fused(const Matrix& x, Workspace& ws) const {
  assert(ws.h.rows() == x.rows() && ws.h.cols() == config_.hidden_dim);
  // z = x·Wx + h·Wh + b. h·Wh lands in its own scratch so the elementwise
  // add matches add(matmul, matmul) in the reference path bit-for-bit.
  matmul_into(x, wx_, ws.z);
  matmul_into(ws.h, wh_, ws.hh);
  add_inplace(ws.z, ws.hh);
  add_row_vector_inplace(ws.z, b_);
  gate_pass(ws);
}

void LstmPredictor::gate_pass(Workspace& ws) const {
  const std::size_t h = config_.hidden_dim;
  const std::size_t batch = ws.z.rows();
  // One pass over the B×4H buffer: all four gate activations plus the
  // c/h update, no gate slicing. Every transcendental runs through the
  // eight-lane kernels: the i/f sigmoids are adjacent in the z layout so
  // one sigmoid_many call covers both. FP order per element is unchanged
  // (tanh_many/sigmoid_many are bit-identical to their scalar forms).
  ws.gates.resize(5, h);
  float* sif_buf = ws.gates.row(0);  // rows 0-1: sigmoid(i), sigmoid(f)
  float* gg_buf = ws.gates.row(2);
  float* go_buf = ws.gates.row(3);
  float* tc_buf = ws.gates.row(4);
  for (std::size_t r = 0; r < batch; ++r) {
    const float* zrow = ws.z.row(r);
    float* crow = ws.c.row(r);
    float* hrow = ws.h.row(r);
    sigmoid_many(zrow, sif_buf, 2 * h);
    tanh_many(zrow + 2 * h, gg_buf, h);
    sigmoid_many(zrow + 3 * h, go_buf, h);
    for (std::size_t j = 0; j < h; ++j) {
      // Separate products before the sum: keeps the FP order of
      // add(hadamard(f, c), hadamard(i, g)).
      const float fc = sif_buf[h + j] * crow[j];
      const float ig = sif_buf[j] * gg_buf[j];
      crow[j] = fc + ig;
    }
    tanh_many(crow, tc_buf, h);
    for (std::size_t j = 0; j < h; ++j) hrow[j] = go_buf[j] * tc_buf[j];
  }
}

void LstmPredictor::project_into(const Matrix& h, Matrix& y) const {
  matmul_into(h, wo_, y);
  add_row_vector_inplace(y, bo_);
  if (config_.sigmoid_output) sigmoid_inplace(y);
}

void LstmPredictor::window_errors(const std::vector<Matrix>& steps,
                                  const Matrix& targets, Workspace& ws,
                                  bool max_step, double* errors) const {
  const std::size_t d = config_.input_dim;
  const std::size_t n_steps = steps.size();
  const std::size_t batch = targets.rows();
  assert(n_steps > 0);
  assert(targets.cols() == d);
  ws.h.resize(batch, config_.hidden_dim);
  ws.h.zero();
  ws.c.resize(batch, config_.hidden_dim);
  ws.c.zero();
  if (max_step)
    for (std::size_t r = 0; r < batch; ++r) errors[r] = 0.0;
  for (std::size_t t = 0; t < n_steps; ++t) {
    assert(steps[t].rows() == batch && steps[t].cols() == d);
    step_fused(steps[t], ws);
    const bool last = t + 1 == n_steps;
    if (!max_step && !last) continue;
    project_into(ws.h, ws.y);
    const Matrix& target_t = last ? targets : steps[t + 1];
    for (std::size_t r = 0; r < batch; ++r) {
      const float* yrow = ws.y.row(r);
      const float* trow = target_t.row(r);
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        double diff = static_cast<double>(yrow[c]) - trow[c];
        acc += diff * diff;
      }
      double err = acc / static_cast<double>(d);
      if (max_step)
        errors[r] = std::max(errors[r], err);
      else
        errors[r] = err;
    }
  }
}

void LstmPredictor::window_errors_strided(const Matrix& xs,
                                          std::size_t n_windows,
                                          std::size_t n_steps, Workspace& ws,
                                          bool max_step,
                                          double* errors) const {
  const std::size_t d = config_.input_dim;
  const std::size_t h = config_.hidden_dim;
  assert(n_steps > 0 && n_windows > 0);
  assert(xs.cols() == d);
  assert(xs.rows() >= n_windows + n_steps);  // inputs plus final targets
  // Window w reads input rows [w, w+n_steps); the last input row any
  // window touches is n_windows + n_steps - 2. One matmul covers them all.
  const std::size_t input_rows = n_windows + n_steps - 1;
  matmul_prefix_into(xs, input_rows, wx_, ws.zx);
  ws.h.resize(n_windows, h);
  ws.h.zero();
  ws.c.resize(n_windows, h);
  ws.c.zero();
  if (max_step)
    for (std::size_t r = 0; r < n_windows; ++r) errors[r] = 0.0;
  for (std::size_t t = 0; t < n_steps; ++t) {
    // The step-t pre-activations of all windows are zx rows [t, t+B) —
    // one contiguous gather instead of a fresh x·Wx matmul.
    ws.z.resize(n_windows, 4 * h);
    std::memcpy(ws.z.row(0), ws.zx.row(t),
                n_windows * 4 * h * sizeof(float));
    matmul_into(ws.h, wh_, ws.hh);
    add_inplace(ws.z, ws.hh);
    add_row_vector_inplace(ws.z, b_);
    gate_pass(ws);
    const bool last = t + 1 == n_steps;
    if (!max_step && !last) continue;
    project_into(ws.h, ws.y);
    for (std::size_t r = 0; r < n_windows; ++r) {
      const float* yrow = ws.y.row(r);
      // The record that actually followed window r's step t.
      const float* trow = xs.row(r + t + 1);
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        double diff = static_cast<double>(yrow[c]) - trow[c];
        acc += diff * diff;
      }
      double err = acc / static_cast<double>(d);
      if (max_step)
        errors[r] = std::max(errors[r], err);
      else
        errors[r] = err;
    }
  }
}

// ---- Training path ------------------------------------------------------

Matrix LstmPredictor::forward_steps(const std::vector<Matrix>& steps,
                                    std::vector<StepCache>* caches,
                                    std::vector<Matrix>* hidden_states) {
  const std::size_t h = config_.hidden_dim;
  const std::size_t batch = steps.empty() ? 0 : steps[0].rows();
  Matrix h_t(batch, h);
  Matrix c_t(batch, h);
  if (caches) caches->clear();
  if (hidden_states) hidden_states->clear();

  for (const Matrix& x : steps) {
    Matrix z = add_row_vector(add(matmul(x, wx_), matmul(h_t, wh_)), b_);
    Matrix i = sigmoid_mat(slice_gate(z, 0, h));
    Matrix f = sigmoid_mat(slice_gate(z, 1, h));
    Matrix g = tanh_mat(slice_gate(z, 2, h));
    Matrix o = sigmoid_mat(slice_gate(z, 3, h));
    Matrix c_next = add(hadamard(f, c_t), hadamard(i, g));
    Matrix tanh_c = tanh_mat(c_next);
    Matrix h_next = hadamard(o, tanh_c);

    if (caches) {
      StepCache cache;
      cache.h_prev = std::move(h_t);
      cache.c_prev = std::move(c_t);
      cache.i = std::move(i);
      cache.f = std::move(f);
      cache.g = std::move(g);
      cache.o = std::move(o);
      cache.tanh_c = std::move(tanh_c);
      caches->push_back(std::move(cache));
    }
    h_t = std::move(h_next);
    c_t = std::move(c_next);
    if (hidden_states) hidden_states->push_back(h_t);
  }
  return h_t;
}

void LstmPredictor::backward_steps(
    const std::vector<Matrix>& steps, const std::vector<StepCache>& caches,
    const std::vector<Matrix>& grad_h_per_step) {
  assert(grad_h_per_step.size() == caches.size());
  assert(steps.size() == caches.size());
  const std::size_t h = config_.hidden_dim;
  const std::size_t batch = steps.empty() ? 0 : steps[0].rows();
  Matrix dh(batch, h);
  Matrix dc(batch, h);

  for (std::size_t t = caches.size(); t-- > 0;) {
    const StepCache& s = caches[t];
    dh = add(dh, grad_h_per_step[t]);
    // h = o ∘ tanh(c)
    Matrix do_ = hadamard(dh, s.tanh_c);
    Matrix dtanh_c = hadamard(dh, s.o);
    // dc += dtanh_c * (1 - tanh(c)^2)
    Matrix dc_from_h = dtanh_c;
    for (std::size_t i = 0; i < dc_from_h.size(); ++i) {
      float tc = s.tanh_c.data()[i];
      dc_from_h.data()[i] *= 1.0f - tc * tc;
    }
    Matrix dc_total = add(dc, dc_from_h);

    // c = f ∘ c_prev + i ∘ g
    Matrix df = hadamard(dc_total, s.c_prev);
    Matrix dc_prev = hadamard(dc_total, s.f);
    Matrix di = hadamard(dc_total, s.g);
    Matrix dg = hadamard(dc_total, s.i);

    // Through gate nonlinearities back to pre-activations.
    auto sig_back = [](Matrix& grad, const Matrix& y) {
      for (std::size_t i = 0; i < grad.size(); ++i) {
        float v = y.data()[i];
        grad.data()[i] *= v * (1.0f - v);
      }
    };
    sig_back(di, s.i);
    sig_back(df, s.f);
    sig_back(do_, s.o);
    for (std::size_t i = 0; i < dg.size(); ++i) {
      float v = s.g.data()[i];
      dg.data()[i] *= 1.0f - v * v;
    }

    Matrix dz(dh.rows(), 4 * h);
    write_gate(dz, 0, h, di);
    write_gate(dz, 1, h, df);
    write_gate(dz, 2, h, dg);
    write_gate(dz, 3, h, do_);

    // z = x Wx + h_prev Wh + b. The input x is read from the caller's
    // step vector (the cache stores no copy of it).
    add_scaled_inplace(grad_wx_, matmul_at(steps[t], dz), 1.0f);
    add_scaled_inplace(grad_wh_, matmul_at(s.h_prev, dz), 1.0f);
    add_scaled_inplace(grad_b_, sum_rows(dz), 1.0f);

    dh = matmul_bt(dz, wh_);
    dc = std::move(dc_prev);
  }
}

Matrix LstmPredictor::project(const Matrix& h) const {
  Matrix pre = add_row_vector(matmul(h, wo_), bo_);
  return config_.sigmoid_output ? sigmoid_mat(pre) : pre;
}

Matrix LstmPredictor::output_forward(const Matrix& h) {
  cached_h_ = h;
  Matrix pre = add_row_vector(matmul(h, wo_), bo_);
  cached_y_ = config_.sigmoid_output ? sigmoid_mat(pre) : pre;
  return cached_y_;
}

Matrix LstmPredictor::output_backward(const Matrix& grad_y) {
  Matrix grad_pre = grad_y;
  if (config_.sigmoid_output) {
    for (std::size_t i = 0; i < grad_pre.size(); ++i) {
      float y = cached_y_.data()[i];
      grad_pre.data()[i] *= y * (1.0f - y);
    }
  }
  add_scaled_inplace(grad_wo_, matmul_at(cached_h_, grad_pre), 1.0f);
  add_scaled_inplace(grad_bo_, sum_rows(grad_pre), 1.0f);
  return matmul_bt(grad_pre, wo_);
}

double LstmPredictor::fit(const std::vector<SequenceSample>& samples,
                          const LstmTrainConfig& train) {
  assert(!samples.empty());
  const std::size_t n_steps = samples[0].window.size();
  const std::size_t d = config_.input_dim;
  // One parameter list for the whole run: zero-grad, clipping, and the
  // optimizer all reuse it instead of rebuilding a vector per batch.
  const std::vector<Param> plist = params();
  Adam optimizer(plist, train.learning_rate);

  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double mean_loss = 0.0;
  for (int epoch = 0; epoch < train.epochs; ++epoch) {
    if (train.shuffle) rng_.shuffle(order.begin(), order.end());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += train.batch_size) {
      std::size_t end = std::min(start + train.batch_size, order.size());
      std::size_t batch = end - start;

      std::vector<Matrix> steps(n_steps, Matrix(batch, d));
      Matrix targets(batch, d);
      for (std::size_t i = start; i < end; ++i) {
        const SequenceSample& sample = samples[order[i]];
        assert(sample.window.size() == n_steps);
        for (std::size_t t = 0; t < n_steps; ++t)
          for (std::size_t c = 0; c < d; ++c)
            steps[t].at(i - start, c) = sample.window[t][c];
        for (std::size_t c = 0; c < d; ++c)
          targets.at(i - start, c) = sample.target[c];
      }

      for (const Param& p : plist) p.grad->zero();
      std::vector<StepCache> caches;
      std::vector<Matrix> hs;
      forward_steps(steps, &caches, &hs);

      // Per-step next-record prediction loss: at step t the model predicts
      // steps[t+1] (or the target after the last step).
      double loss = 0.0;
      std::vector<Matrix> grad_h(n_steps);
      for (std::size_t t = 0; t < n_steps; ++t) {
        const Matrix& target_t = (t + 1 < n_steps) ? steps[t + 1] : targets;
        Matrix y = project(hs[t]);
        Matrix diff = sub(y, target_t);
        double step_loss = 0.0;
        for (float v : diff.data())
          step_loss += static_cast<double>(v) * v;
        loss += step_loss / static_cast<double>(diff.size() * n_steps);

        Matrix g = diff;
        scale_inplace(g, 2.0f / static_cast<float>(diff.size() * n_steps));
        if (config_.sigmoid_output) {
          for (std::size_t i = 0; i < g.size(); ++i) {
            float yv = y.data()[i];
            g.data()[i] *= yv * (1.0f - yv);
          }
        }
        add_scaled_inplace(grad_wo_, matmul_at(hs[t], g), 1.0f);
        add_scaled_inplace(grad_bo_, sum_rows(g), 1.0f);
        grad_h[t] = matmul_bt(g, wo_);
      }
      backward_steps(steps, caches, grad_h);
      clip_grad_norm(plist, train.grad_clip);
      optimizer.step();

      epoch_loss += loss;
      ++batches;
    }
    mean_loss = batches ? epoch_loss / static_cast<double>(batches) : 0.0;
    if (train.on_epoch) train.on_epoch(epoch, mean_loss);
  }
  return mean_loss;
}

std::vector<float> LstmPredictor::predict(
    const std::vector<std::vector<float>>& window) {
  const std::size_t d = config_.input_dim;
  Workspace ws;
  ws.h.resize(1, config_.hidden_dim);
  ws.h.zero();
  ws.c.resize(1, config_.hidden_dim);
  ws.c.zero();
  Matrix x(1, d);
  for (const auto& step : window) {
    assert(step.size() == d);
    for (std::size_t c = 0; c < d; ++c) x.at(0, c) = step[c];
    step_fused(x, ws);
  }
  project_into(ws.h, ws.y);
  std::vector<float> out(d);
  for (std::size_t c = 0; c < d; ++c) out[c] = ws.y.at(0, c);
  return out;
}

double LstmPredictor::prediction_error(const SequenceSample& sample) {
  std::vector<float> predicted = predict(sample.window);
  double acc = 0.0;
  for (std::size_t c = 0; c < predicted.size(); ++c) {
    double diff = static_cast<double>(predicted[c]) - sample.target[c];
    acc += diff * diff;
  }
  return acc / static_cast<double>(predicted.size());
}

namespace {
/// Shared batched-evaluation driver: assembles kBatch-sized chunks of
/// samples into step matrices and scores them through the fused workspace
/// path. One buffer set is reused across chunks.
std::vector<double> batched_errors(const LstmPredictor& model,
                                   const std::vector<SequenceSample>& samples,
                                   std::size_t input_dim, bool max_step) {
  std::vector<double> errors;
  errors.reserve(samples.size());
  if (samples.empty()) return errors;
  errors.resize(samples.size());

  const std::size_t n_steps = samples[0].window.size();
  const std::size_t d = input_dim;
  const std::size_t kBatch = 64;
  std::vector<Matrix> steps(n_steps);
  Matrix targets;
  LstmPredictor::Workspace ws;
  for (std::size_t start = 0; start < samples.size(); start += kBatch) {
    std::size_t end = std::min(start + kBatch, samples.size());
    std::size_t batch = end - start;
    for (std::size_t t = 0; t < n_steps; ++t) steps[t].resize(batch, d);
    targets.resize(batch, d);
    for (std::size_t i = start; i < end; ++i) {
      const SequenceSample& sample = samples[i];
      assert(sample.window.size() == n_steps);
      for (std::size_t t = 0; t < n_steps; ++t)
        for (std::size_t c = 0; c < d; ++c)
          steps[t].at(i - start, c) = sample.window[t][c];
      for (std::size_t c = 0; c < d; ++c)
        targets.at(i - start, c) = sample.target[c];
    }
    model.window_errors(steps, targets, ws, max_step, errors.data() + start);
  }
  return errors;
}
}  // namespace

std::vector<double> LstmPredictor::max_step_errors(
    const std::vector<SequenceSample>& samples) {
  return batched_errors(*this, samples, config_.input_dim, /*max_step=*/true);
}

std::vector<double> LstmPredictor::prediction_errors(
    const std::vector<SequenceSample>& samples) {
  return batched_errors(*this, samples, config_.input_dim, /*max_step=*/false);
}

}  // namespace xsec::dl
