// Batched tanh: same fdlibm semantics as tanh_scalar (tanhf.hpp), eight
// lanes at a time. Scalar fdlibm tanh spends most of its time in branch
// mispredicts (the |x|<1 / k-case branches are data-dependent) and two
// serial divides; evaluating every branch arm vectorially and blending by
// lane mask removes the mispredicts and amortizes the divides, while each
// IEEE float op stays bit-identical per lane to its scalar counterpart.
// scripts/verify_tanhf.cpp sweeps this path over all 2^32 bit patterns
// too.
//
// Derived from fdlibm (s_tanhf.c, s_expm1f.c); see tanhf.hpp for the
// SunPro notice.

#include "dl/tanhf.hpp"

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace xsec::dl {
namespace {

void tanh_many_base(const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = tanh_scalar(x[i]);
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) inline __m256 blend(__m256 a, __m256 b,
                                                    __m256 mask) {
  return _mm256_blendv_ps(a, b, mask);  // mask lane set -> b
}

__attribute__((target("avx2"))) inline __m256 blendi(__m256 a, __m256 b,
                                                     __m256i mask) {
  return _mm256_blendv_ps(a, b, _mm256_castsi256_ps(mask));
}

/// Eight-lane fdlibm expm1f over the argument domain tanh feeds it:
/// (-2, 0) and [2, 44). The scalar routine's overflow / -27ln2 / inf /
/// NaN filters cannot trigger there (the caller diverts non-finite inputs
/// to the scalar path), so only the reduction, the polynomial, and the
/// k-case reconstructions are materialized. The k=±1 fast reduction of
/// the scalar code is skipped: with t=(float)k=±1, hi = x - t*ln2_hi and
/// lo = t*ln2_lo round to exactly the same bits as the shortcut, so the
/// general reduction is used for every lane.
__attribute__((target("avx2"))) __m256 expm1f_lanes(__m256 vx) {
  using namespace tanhf_detail;
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);

  const __m256i bits = _mm256_castps_si256(vx);
  const __m256i hx = _mm256_and_si256(bits, abs_mask);
  // |x| > 0.5 ln2 -> reduce. Signed compare is fine: hx <= 0x7f7fffff.
  const __m256i red_mask =
      _mm256_cmpgt_epi32(hx, _mm256_set1_epi32(0x3eb17218));

  // k = (int)(invln2*x ± 0.5), truncated like cvttss2si.
  const __m256 sign_half =
      blend(half, _mm256_set1_ps(-0.5f),
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(
                _mm256_setzero_si256(), bits)));  // x < 0 -> -0.5
  __m256i k = _mm256_cvttps_epi32(
      _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(kInvLn2), vx), sign_half));
  k = _mm256_and_si256(k, red_mask);  // unreduced lanes: k = 0

  const __m256 t = _mm256_cvtepi32_ps(k);
  const __m256 hi =
      _mm256_sub_ps(vx, _mm256_mul_ps(t, _mm256_set1_ps(kLn2Hi)));
  const __m256 lo = _mm256_mul_ps(t, _mm256_set1_ps(kLn2Lo));
  __m256 xr = _mm256_sub_ps(hi, lo);
  __m256 c = _mm256_sub_ps(_mm256_sub_ps(hi, xr), lo);
  xr = blendi(vx, xr, red_mask);
  c = _mm256_and_ps(c, _mm256_castsi256_ps(red_mask));
  // Unreduced lanes below 2^-25 return x in the scalar code; the k=0
  // reconstruction x - (x*e - hxs) rounds to exactly x there (hxs has at
  // most 2^-26 the magnitude of x), so no separate blend is needed.

  // Primary-range polynomial, identical operation order to the scalar.
  const __m256 hfx = _mm256_mul_ps(half, xr);
  const __m256 hxs = _mm256_mul_ps(xr, hfx);
  __m256 r1 = _mm256_mul_ps(hxs, _mm256_set1_ps(kQ5));
  r1 = _mm256_add_ps(r1, _mm256_set1_ps(kQ4));
  r1 = _mm256_mul_ps(r1, hxs);
  r1 = _mm256_add_ps(r1, _mm256_set1_ps(kQ3));
  r1 = _mm256_mul_ps(r1, hxs);
  r1 = _mm256_add_ps(r1, _mm256_set1_ps(kQ2));
  r1 = _mm256_mul_ps(r1, hxs);
  r1 = _mm256_add_ps(r1, _mm256_set1_ps(kQ1));
  r1 = _mm256_mul_ps(r1, hxs);
  r1 = _mm256_add_ps(r1, one);
  const __m256 t3 =
      _mm256_sub_ps(_mm256_set1_ps(3.0f), _mm256_mul_ps(r1, hfx));
  const __m256 e =
      _mm256_mul_ps(hxs, _mm256_div_ps(_mm256_sub_ps(r1, t3),
                                       _mm256_sub_ps(_mm256_set1_ps(6.0f),
                                                     _mm256_mul_ps(xr, t3))));

  // k == 0: x - (x*e - hxs).
  const __m256 res0 =
      _mm256_sub_ps(xr, _mm256_sub_ps(_mm256_mul_ps(xr, e), hxs));

  // Shared k != 0 term: e2 = (x*(e - c) - c) - hxs.
  const __m256 e2 = _mm256_sub_ps(
      _mm256_sub_ps(_mm256_mul_ps(xr, _mm256_sub_ps(e, c)), c), hxs);
  const __m256 twopk = _mm256_castsi256_ps(_mm256_slli_epi32(
      _mm256_add_epi32(k, _mm256_set1_epi32(0x7f)), 23));  // 2^k

  // k == -1: 0.5*(x - e2) - 0.5.
  const __m256 resm1 =
      _mm256_sub_ps(_mm256_mul_ps(half, _mm256_sub_ps(xr, e2)), half);

  // k == 1: x < -0.25 ? -2*(e2 - (x + 0.5)) : 1 + 2*(x - e2).
  const __m256 res1 = blend(
      _mm256_add_ps(one, _mm256_mul_ps(_mm256_set1_ps(2.0f),
                                       _mm256_sub_ps(xr, e2))),
      _mm256_mul_ps(_mm256_set1_ps(-2.0f),
                    _mm256_sub_ps(e2, _mm256_add_ps(xr, half))),
      _mm256_cmp_ps(xr, _mm256_set1_ps(-0.25f), _CMP_LT_OQ));

  // k <= -2 or k > 56: (1 - (e2 - x))*2^k - 1. (k = 128 cannot occur:
  // the overflow filter would have fired first in the scalar code.)
  const __m256 resbig = _mm256_sub_ps(
      _mm256_mul_ps(_mm256_sub_ps(one, _mm256_sub_ps(e2, xr)), twopk), one);

  // 2 <= k < 23: (t1k - (e2 - x))*2^k with t1k = 1 - 2^-k via bit trick.
  const __m256 t1k = _mm256_castsi256_ps(_mm256_sub_epi32(
      _mm256_set1_epi32(0x3f800000),
      _mm256_srlv_epi32(_mm256_set1_epi32(0x1000000), k)));
  const __m256 ress = _mm256_mul_ps(
      _mm256_sub_ps(t1k, _mm256_sub_ps(e2, xr)), twopk);

  // 23 <= k <= 56: ((x - (e2 + 2^-k)) + 1)*2^k.
  const __m256 tm = _mm256_castsi256_ps(_mm256_slli_epi32(
      _mm256_sub_epi32(_mm256_set1_epi32(0x7f), k), 23));  // 2^-k
  const __m256 resl = _mm256_mul_ps(
      _mm256_add_ps(_mm256_sub_ps(xr, _mm256_add_ps(e2, tm)), one), twopk);

  // Select per lane by k.
  const __m256i zero = _mm256_setzero_si256();
  const __m256i km1 = _mm256_set1_epi32(-1);
  __m256 res = resbig;
  // 2 <= k < 23 <=> k > 1 && k < 23; 23 <= k <= 56 <=> k > 22 && k < 57.
  res = blendi(res, ress,
               _mm256_and_si256(_mm256_cmpgt_epi32(k, _mm256_set1_epi32(1)),
                                _mm256_cmpgt_epi32(_mm256_set1_epi32(23), k)));
  res = blendi(res, resl,
               _mm256_and_si256(_mm256_cmpgt_epi32(k, _mm256_set1_epi32(22)),
                                _mm256_cmpgt_epi32(_mm256_set1_epi32(57), k)));
  res = blendi(res, res1, _mm256_cmpeq_epi32(k, _mm256_set1_epi32(1)));
  res = blendi(res, resm1, _mm256_cmpeq_epi32(k, km1));
  res = blendi(res, res0, _mm256_cmpeq_epi32(k, zero));
  return res;
}

__attribute__((target("avx2"))) void tanh_many_avx2(const float* x,
                                                    float* out,
                                                    std::size_t n) {
  using namespace tanhf_detail;
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256i bits = _mm256_castps_si256(vx);
    const __m256i ix = _mm256_and_si256(bits, abs_mask);

    // Inf/NaN lanes take the scalar path (never happens on model data).
    const __m256i nonfinite =
        _mm256_cmpgt_epi32(ix, _mm256_set1_epi32(0x7f7fffff));
    if (_mm256_movemask_epi8(nonfinite) != 0) {
      for (std::size_t j = 0; j < 8; ++j) out[i + j] = tanh_scalar(x[i + j]);
      continue;
    }

    const __m256 absx = _mm256_castsi256_ps(ix);
    const __m256i lt1 =
        _mm256_cmpgt_epi32(_mm256_set1_epi32(0x3f800000), ix);  // |x| < 1
    const __m256 a2 = _mm256_add_ps(absx, absx);                // 2|x| exact
    // |x| < 1 feeds expm1(-2|x|), |x| >= 1 feeds expm1(+2|x|).
    const __m256 arg =
        blendi(a2, _mm256_xor_ps(a2, _mm256_set1_ps(-0.0f)), lt1);

    const __m256 t = expm1f_lanes(arg);

    // |x| >= 1: z = 1 - 2/(t+2);  |x| < 1: z = (-t)/(t+2). One divide:
    // round-to-nearest is sign-symmetric, so (-t)/d == -(t/d) bit-for-bit.
    const __m256 d = _mm256_add_ps(t, two);
    const __m256 q = _mm256_div_ps(blendi(two, t, lt1), d);
    __m256 z = blendi(_mm256_sub_ps(one, q),
                      _mm256_xor_ps(q, _mm256_set1_ps(-0.0f)), lt1);

    // |x| >= 22 saturates; 1 - 1e-30 rounds to exactly 1.0f.
    z = blendi(z, one,
               _mm256_cmpgt_epi32(ix, _mm256_set1_epi32(0x41afffff)));
    // Reattach the sign, then overlay the |x| < 2^-55 lanes, whose
    // x*(1+x) form uses the signed x directly.
    z = _mm256_or_ps(z,
                     _mm256_and_ps(vx, _mm256_set1_ps(-0.0f)));
    const __m256 tiny_form = _mm256_mul_ps(vx, _mm256_add_ps(one, vx));
    z = blendi(z, tiny_form,
               _mm256_cmpgt_epi32(_mm256_set1_epi32(0x24000000), ix));
    _mm256_storeu_ps(out + i, z);
  }
  for (; i < n; ++i) out[i] = tanh_scalar(x[i]);
}

#endif  // x86

using TanhManyFn = void (*)(const float*, float*, std::size_t);

TanhManyFn pick_tanh_many() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return tanh_many_avx2;
#endif
  return tanh_many_base;
}

const TanhManyFn g_tanh_many = pick_tanh_many();

}  // namespace

void tanh_many(const float* x, float* out, std::size_t n) {
  g_tanh_many(x, out, n);
}

}  // namespace xsec::dl
