// Optimizers (SGD with momentum, Adam) over explicit Param lists.
#pragma once

#include <vector>

#include "dl/layers.hpp"

namespace xsec::dl {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  virtual void step() = 0;
  void zero_grad() {
    for (Param& p : params_) p.grad->zero();
  }

 protected:
  std::vector<Param> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  long t_ = 0;
};

/// Global-norm gradient clipping (keeps LSTM BPTT stable).
void clip_grad_norm(const std::vector<Param>& params, float max_norm);

}  // namespace xsec::dl
