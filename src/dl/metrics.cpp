#include "dl/metrics.hpp"

#include <limits>

#include "common/strings.hpp"

namespace xsec::dl {

double Confusion::accuracy() const {
  if (total() == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(tp + tn) / static_cast<double>(total());
}

double Confusion::precision() const {
  if (tp + fp == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double Confusion::recall() const {
  if (tp + fn == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double Confusion::f1() const {
  double p = precision();
  double r = recall();
  if (std::isnan(p) || std::isnan(r) || p + r == 0.0)
    return std::numeric_limits<double>::quiet_NaN();
  return 2.0 * p * r / (p + r);
}

void Confusion::add(bool predicted_positive, bool actually_positive) {
  if (predicted_positive && actually_positive)
    ++tp;
  else if (predicted_positive && !actually_positive)
    ++fp;
  else if (!predicted_positive && actually_positive)
    ++fn;
  else
    ++tn;
}

Confusion evaluate_threshold(const std::vector<double>& scores,
                             const std::vector<bool>& labels,
                             double threshold) {
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i)
    c.add(scores[i] > threshold, labels[i]);
  return c;
}

std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
kfold_indices(std::size_t n, std::size_t k) {
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      folds;
  if (k == 0 || n == 0) return folds;
  for (std::size_t fold = 0; fold < k; ++fold) {
    std::vector<std::size_t> train, test;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % k == fold)
        test.push_back(i);
      else
        train.push_back(i);
    }
    folds.emplace_back(std::move(train), std::move(test));
  }
  return folds;
}

std::string format_metric(double value, int decimals) {
  return format_percent(value, decimals);
}

}  // namespace xsec::dl
