// Dense row-major float matrix with the operations the networks need.
//
// The models in this reproduction are small (windowed one-hot inputs, a few
// hundred hidden units), so a straightforward cache-friendly implementation
// with no BLAS dependency is both sufficient and deterministic across
// platforms — which matters for reproducing Table 2 bit-for-bit.
//
// Two API layers:
//   - `_into` kernels write into caller-owned buffers and are the
//     inference hot path: once a buffer has capacity they never touch the
//     heap (Matrix::resize keeps capacity when shrinking).
//   - The allocating functions (matmul, add, ...) are thin wrappers over
//     the `_into` kernels, kept for the training/backprop code where a
//     fresh temporary per op is fine.
// Every kernel accumulates each output element over k in ascending order,
// so the sparse zero-skip path, the register-blocked dense path, and the
// wrappers all produce bit-identical results for finite inputs.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace xsec::dl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(const std::vector<std::vector<float>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reshapes in place. Contents are unspecified afterwards (kernels
  /// overwrite their output). The backing vector keeps its capacity, so a
  /// workspace matrix warmed at its largest shape never reallocates when
  /// reused at smaller shapes.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Xavier/Glorot uniform initialization: U(-s, s), s = sqrt(6/(in+out)).
  void xavier_init(Rng& rng, std::size_t fan_in, std::size_t fan_out);

  Matrix transposed() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- `_into` kernels (allocation-free once `out` has capacity) ----------

/// Fraction of nonzero elements in [0, 1] (1 for an empty matrix).
float density(const Matrix& a);

/// Density at or above which matmul_into picks the register-blocked dense
/// kernel over the zero-skip loop. One-hot encoder rows sit far below it;
/// standardized hidden activations sit far above.
inline constexpr float kDenseDispatchDensity = 0.25f;

/// out = a (r×k) * b (k×c). Dispatches on density(a): the zero-skip loop
/// for sparse inputs (one-hot rows), the register-blocked kernel for dense
/// ones. Both orders are bit-identical.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);
/// out = first `a_rows` rows of a (a_rows×k) * b (k×c). Lets a caller
/// multiply a prefix of a taller workspace matrix without copying it.
void matmul_prefix_into(const Matrix& a, std::size_t a_rows, const Matrix& b,
                        Matrix& out);
/// Zero-skip kernel: skips a's zero elements (the reference loop).
void matmul_sparse_into(const Matrix& a, const Matrix& b, Matrix& out);
/// Register-blocked kernel: per output row, column tiles are accumulated
/// in registers with no per-element branch.
void matmul_dense_into(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a (r×k) * b^T (c×k).
void matmul_bt_into(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a^T (k×r) * b (k×c).
void matmul_at_into(const Matrix& a, const Matrix& b, Matrix& out);

void add_into(const Matrix& a, const Matrix& b, Matrix& out);
void sub_into(const Matrix& a, const Matrix& b, Matrix& out);
void hadamard_into(const Matrix& a, const Matrix& b, Matrix& out);
void add_row_vector_into(const Matrix& a, const Matrix& row, Matrix& out);
void sum_rows_into(const Matrix& a, Matrix& out);

/// a += b element-wise.
void add_inplace(Matrix& a, const Matrix& b);
/// Adds a 1×c row vector to every row of a, in place.
void add_row_vector_inplace(Matrix& a, const Matrix& row);

// ---- Allocating wrappers (training paths) -------------------------------

/// out = a (r×k) * b (k×c)
Matrix matmul(const Matrix& a, const Matrix& b);
/// out = a (r×k) * b^T (c×k)
Matrix matmul_bt(const Matrix& a, const Matrix& b);
/// out = a^T (k×r) * b (k×c)
Matrix matmul_at(const Matrix& a, const Matrix& b);

Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
/// Adds a 1×c row vector to every row of a.
Matrix add_row_vector(const Matrix& a, const Matrix& row);
/// Column-wise sum producing a 1×c matrix (bias gradients).
Matrix sum_rows(const Matrix& a);
void scale_inplace(Matrix& a, float k);
void add_scaled_inplace(Matrix& a, const Matrix& b, float k);

}  // namespace xsec::dl
