// Dense row-major float matrix with the operations the networks need.
//
// The models in this reproduction are small (windowed one-hot inputs, a few
// hundred hidden units), so a straightforward cache-friendly implementation
// with no BLAS dependency is both sufficient and deterministic across
// platforms — which matters for reproducing Table 2 bit-for-bit.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace xsec::dl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(const std::vector<std::vector<float>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Xavier/Glorot uniform initialization: U(-s, s), s = sqrt(6/(in+out)).
  void xavier_init(Rng& rng, std::size_t fan_in, std::size_t fan_out);

  Matrix transposed() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a (r×k) * b (k×c)
Matrix matmul(const Matrix& a, const Matrix& b);
/// out = a (r×k) * b^T (c×k)
Matrix matmul_bt(const Matrix& a, const Matrix& b);
/// out = a^T (k×r) * b (k×c)
Matrix matmul_at(const Matrix& a, const Matrix& b);

Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
/// Adds a 1×c row vector to every row of a.
Matrix add_row_vector(const Matrix& a, const Matrix& row);
/// Column-wise sum producing a 1×c matrix (bias gradients).
Matrix sum_rows(const Matrix& a);
void scale_inplace(Matrix& a, float k);
void add_scaled_inplace(Matrix& a, const Matrix& b, float k);

}  // namespace xsec::dl
