// Autoencoder for unsupervised anomaly detection (paper §3.2).
//
// A symmetric MLP compresses the flattened, one-hot-encoded telemetry
// window to a low-dimensional code and reconstructs it; the per-sample mean
// squared reconstruction error is the anomaly score. Trained only on
// benign windows — outliers reconstruct poorly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dl/layers.hpp"
#include "dl/optim.hpp"

namespace xsec::dl {

struct AutoencoderConfig {
  std::size_t input_dim = 0;
  /// Encoder hidden widths; the decoder mirrors them. The last entry is
  /// the bottleneck.
  std::vector<std::size_t> hidden = {128, 32};
  std::uint64_t seed = 1234;
  /// Sigmoid output suits raw one-hot inputs in [0,1]; standardized inputs
  /// need a linear output.
  bool sigmoid_output = true;
};

struct TrainConfig {
  int epochs = 40;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;
  /// Shuffle batches each epoch (deterministic given the model seed).
  bool shuffle = true;
  /// Optional per-epoch callback(epoch, mean_loss).
  std::function<void(int, double)> on_epoch;
};

class Autoencoder {
 public:
  explicit Autoencoder(AutoencoderConfig config);

  /// Trains on benign data (rows = samples). Returns final mean loss.
  double fit(const Matrix& data, const TrainConfig& train);

  /// Per-row mean squared reconstruction error.
  std::vector<double> reconstruction_errors(const Matrix& data);
  double reconstruction_error(const std::vector<float>& sample);
  Matrix reconstruct(const Matrix& data);

  /// Inference-only reconstruction through the network's preallocated
  /// ping-pong buffers: no gradient caches, no heap allocation once
  /// warmed, bit-identical to reconstruct(). The reference stays valid
  /// until the next infer()/reconstruct().
  const Matrix& infer(const Matrix& data) { return network_.infer(data); }
  /// Per-row MSE via the inference path, written to errors[0..rows).
  void reconstruction_errors_into(const Matrix& data, double* errors);

  const AutoencoderConfig& config() const { return config_; }
  std::vector<Param> params() { return network_.params(); }

 private:
  AutoencoderConfig config_;
  Sequential network_;
  Rng rng_;
};

}  // namespace xsec::dl
