#include "dl/serialize.hpp"

#include <bit>
#include <fstream>

namespace xsec::dl {

namespace {
constexpr std::uint32_t kMagic = 0x584D4C31;  // "XML1" (XSec ModeL v1)
}

Bytes save_params(const std::vector<Param>& params) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const Param& p : params) {
    w.u32(static_cast<std::uint32_t>(p.value->rows()));
    w.u32(static_cast<std::uint32_t>(p.value->cols()));
    for (float v : p.value->data()) w.u32(std::bit_cast<std::uint32_t>(v));
  }
  return w.take();
}

Status load_params(const std::vector<Param>& params, const Bytes& blob) {
  ByteReader r(blob);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (magic.value() != kMagic)
    return Error::make("malformed", "bad model magic");
  auto count = r.u32();
  if (!count) return count.error();
  if (count.value() != params.size())
    return Error::make("shape", "parameter count mismatch");
  for (const Param& p : params) {
    auto rows = r.u32();
    if (!rows) return rows.error();
    auto cols = r.u32();
    if (!cols) return cols.error();
    if (rows.value() != p.value->rows() || cols.value() != p.value->cols())
      return Error::make("shape", "parameter shape mismatch");
    for (float& v : p.value->data()) {
      auto bits = r.u32();
      if (!bits) return bits.error();
      v = std::bit_cast<float>(bits.value());
    }
  }
  if (!r.exhausted()) return Error::make("malformed", "trailing bytes");
  return Status::ok_status();
}

Status save_params_file(const std::vector<Param>& params,
                        const std::string& path) {
  Bytes blob = save_params(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error::make("io", "cannot open " + path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) return Error::make("io", "write failed for " + path);
  return Status::ok_status();
}

Status load_params_file(const std::vector<Param>& params,
                        const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error::make("io", "cannot open " + path);
  Bytes blob((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return load_params(params, blob);
}

}  // namespace xsec::dl
