#include "dl/optim.hpp"

#include <cmath>

namespace xsec::dl {

Sgd::Sgd(std::vector<Param> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Param& p : params_)
    velocity_.emplace_back(p.value->rows(), p.value->cols());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& v = velocity_[i];
    const Matrix& g = *params_[i].grad;
    Matrix& w = *params_[i].value;
    for (std::size_t j = 0; j < w.size(); ++j) {
      v.data()[j] = momentum_ * v.data()[j] - lr_ * g.data()[j];
      w.data()[j] += v.data()[j];
    }
  }
}

Adam::Adam(std::vector<Param> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    const Matrix& g = *params_[i].grad;
    Matrix& w = *params_[i].value;
    for (std::size_t j = 0; j < w.size(); ++j) {
      float gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * gj * gj;
      float mhat = m.data()[j] / bc1;
      float vhat = v.data()[j] / bc2;
      w.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void clip_grad_norm(const std::vector<Param>& params, float max_norm) {
  double total = 0.0;
  for (const Param& p : params)
    for (float g : p.grad->data()) total += static_cast<double>(g) * g;
  double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  float scale = static_cast<float>(max_norm / norm);
  for (const Param& p : params)
    for (float& g : p.grad->data()) g *= scale;
}

}  // namespace xsec::dl
